// Package pmem lays out the simulated NVMM region and implements the
// paper's persistent allocators: per-core bump allocators with ring-buffer
// free lists whose control offsets are checkpointed at epoch granularity
// (Figure 4 of the paper), so that a crash reverts all allocations and
// revertible frees of the in-flight epoch.
package pmem

import (
	"errors"
	"fmt"

	"nvcaracal/internal/nvm"
	"nvcaracal/internal/obs"
)

// Magic identifies a formatted NVCaracal region.
const Magic = uint64(0x4e56434152414341) // "NVCARACA"

// LayoutVersion guards against attaching to an incompatible format.
// Version 5 widened free-ring entries from 8 to 16 bytes (offset + stamp)
// and retired the pool control line's current-tail stage slots. Version 6
// split the input-log region into two epoch-parity slots so a pipelined
// epoch can serialize its inputs while the previous epoch's checkpoint is
// still committing.
const LayoutVersion = uint64(6)

const line = int64(nvm.LineSize)

// Layout describes how the NVMM region is carved into the header, epoch
// record, TPC-C counter slots, the input-log region, and the per-core
// persistent row and value pools. All offsets are line-aligned.
type Layout struct {
	// Parameters (persisted in the header and validated on Attach).
	Cores         int
	RowSize       int64 // bytes per persistent row (fixed, default 256)
	RowsPerCore   int64 // row pool capacity per core
	ValueSize     int64 // bytes per persistent value slot (fixed, default 1024)
	ValuesPerCore int64 // value pool capacity per core (per size class)
	// ValueSizes optionally adds further value size classes beyond
	// ValueSize, realizing §5.5's "one pool for each power of two size"
	// extension. Each class gets its own per-core pool of ValuesPerCore
	// slots. Sorted ascending; ValueSize is appended automatically if not
	// listed. At most 6 classes.
	ValueSizes []int64
	RingCap    int64 // free-list ring entries per pool
	LogBytes   int64 // input-log region size
	Counters   int64 // persistent counter slots (e.g. TPC-C order ids)
	// ScratchPerCore sizes the per-core NVMM scratch arenas used by the
	// all-NVMM and hybrid baseline modes to store transient versions in
	// NVMM. Zero for the NVCaracal design, which keeps them in DRAM.
	ScratchPerCore int64
	// IndexLogBytes sizes the optional persistent index journal (the
	// paper's §7 extension: batched index updates persisted at epoch
	// granularity so recovery can skip the full row scan). Zero disables
	// the journal.
	IndexLogBytes int64

	// Computed offsets.
	headerOff  int64
	epochOff   int64
	counterOff int64
	logOff     int64
	rowCtlOff  []int64
	rowRingOff []int64
	rowDataOff []int64
	valClasses []int64   // resolved ascending size classes
	valCtlOff  [][]int64 // [class][core]
	valRingOff [][]int64
	valDataOff [][]int64
	scratchOff []int64
	idxLogOff  int64
	total      int64
}

func alignUp(x int64) int64 { return (x + line - 1) / line * line }

// DefaultLayout returns a layout with the paper's default row (256 B) and
// value (1024 B) sizes, sized for the given per-core capacities.
func DefaultLayout(cores int, rowsPerCore, valuesPerCore int64) Layout {
	l := Layout{
		Cores:         cores,
		RowSize:       256,
		RowsPerCore:   rowsPerCore,
		ValueSize:     1024,
		ValuesPerCore: valuesPerCore,
		RingCap:       rowsPerCore + valuesPerCore + 1024,
		LogBytes:      8 << 20,
		Counters:      64,
	}
	l.compute()
	return l
}

// Finalize validates parameters and computes all region offsets. It must be
// called after manual construction and before use.
func (l *Layout) Finalize() error {
	if l.Cores <= 0 {
		return errors.New("pmem: layout needs at least one core")
	}
	if l.RowSize < 64 || l.RowSize%line != 0 {
		return fmt.Errorf("pmem: row size %d must be a positive multiple of %d", l.RowSize, line)
	}
	if l.ValueSize <= 0 {
		return fmt.Errorf("pmem: value size %d must be positive", l.ValueSize)
	}
	if l.RowsPerCore <= 0 || l.ValuesPerCore <= 0 {
		return errors.New("pmem: pool capacities must be positive")
	}
	if l.RingCap <= 0 {
		return errors.New("pmem: ring capacity must be positive")
	}
	if l.LogBytes < 4096 {
		return errors.New("pmem: log region too small")
	}
	if l.Counters < 0 {
		return errors.New("pmem: negative counter count")
	}
	if l.ScratchPerCore < 0 {
		return errors.New("pmem: negative scratch size")
	}
	if len(l.ValueSizes) > 5 {
		return errors.New("pmem: at most 6 value size classes")
	}
	for _, vs := range l.ValueSizes {
		if vs <= 0 {
			return errors.New("pmem: non-positive value size class")
		}
	}
	if l.IndexLogBytes < 0 {
		return errors.New("pmem: negative index log size")
	}
	if l.IndexLogBytes > 0 && l.IndexLogBytes < 4096 {
		return errors.New("pmem: index log too small (min 4096)")
	}
	l.compute()
	return nil
}

// resolveValueClasses merges ValueSize and ValueSizes into the sorted,
// deduplicated class list.
func (l *Layout) resolveValueClasses() {
	classes := append([]int64{}, l.ValueSizes...)
	found := false
	for _, c := range classes {
		if c == l.ValueSize {
			found = true
		}
	}
	if !found {
		classes = append(classes, l.ValueSize)
	}
	for i := 1; i < len(classes); i++ {
		for j := i; j > 0 && classes[j] < classes[j-1]; j-- {
			classes[j], classes[j-1] = classes[j-1], classes[j]
		}
	}
	dedup := classes[:0]
	var prev int64 = -1
	for _, c := range classes {
		if c != prev {
			dedup = append(dedup, c)
			prev = c
		}
	}
	l.valClasses = dedup
}

func (l *Layout) compute() {
	l.resolveValueClasses()
	off := int64(0)
	l.headerOff = off
	off += 2 * line // magic/version + params (two lines)
	l.epochOff = off
	off += line // epoch record gets its own line
	l.counterOff = off
	off += alignUp(l.Counters * counterStride)
	l.logOff = off
	off += alignUp(l.LogBytes)

	l.rowCtlOff = make([]int64, l.Cores)
	l.rowRingOff = make([]int64, l.Cores)
	l.rowDataOff = make([]int64, l.Cores)
	for c := 0; c < l.Cores; c++ {
		l.rowCtlOff[c] = off
		off += line
		l.rowRingOff[c] = off
		off += alignUp(l.RingCap * ringStride)
		l.rowDataOff[c] = off
		off += alignUp(l.RowsPerCore * l.RowSize)
	}
	l.valCtlOff = make([][]int64, len(l.valClasses))
	l.valRingOff = make([][]int64, len(l.valClasses))
	l.valDataOff = make([][]int64, len(l.valClasses))
	for k, size := range l.valClasses {
		l.valCtlOff[k] = make([]int64, l.Cores)
		l.valRingOff[k] = make([]int64, l.Cores)
		l.valDataOff[k] = make([]int64, l.Cores)
		for c := 0; c < l.Cores; c++ {
			l.valCtlOff[k][c] = off
			off += line
			l.valRingOff[k][c] = off
			off += alignUp(l.RingCap * ringStride)
			l.valDataOff[k][c] = off
			off += alignUp(l.ValuesPerCore * size)
		}
	}
	l.scratchOff = make([]int64, l.Cores)
	for c := 0; c < l.Cores; c++ {
		l.scratchOff[c] = off
		off += alignUp(l.ScratchPerCore)
	}
	l.idxLogOff = off
	off += alignUp(l.IndexLogBytes)
	l.total = off
}

// TotalBytes returns the device size this layout requires.
func (l *Layout) TotalBytes() int64 { return l.total }

// LogOff returns the offset of the input-log region.
func (l *Layout) LogOff() int64 { return l.logOff }

// LogCap returns the usable size of the input-log region.
func (l *Layout) LogCap() int64 { return l.LogBytes }

// CounterOff returns the offset of persistent counter i's parity pair.
func (l *Layout) CounterOff(i int64) int64 {
	if i < 0 || i >= l.Counters {
		panic(fmt.Sprintf("pmem: counter %d out of range", i))
	}
	return l.counterOff + i*counterStride
}

// RowDataOff returns the base offset of core c's persistent row region.
func (l *Layout) RowDataOff(c int) int64 { return l.rowDataOff[c] }

// ScratchOff returns the base offset of core c's NVMM scratch arena.
func (l *Layout) ScratchOff(c int) int64 { return l.scratchOff[c] }

// ValDataOff returns the base offset of core c's persistent value region
// for size class k.
func (l *Layout) ValDataOff(k, c int) int64 { return l.valDataOff[k][c] }

// ValueClasses returns the resolved ascending value size classes.
func (l *Layout) ValueClasses() []int64 { return l.valClasses }

// ValueClassFor returns the index of the smallest class fitting n bytes,
// or -1 if none fits.
func (l *Layout) ValueClassFor(n int64) int {
	for k, size := range l.valClasses {
		if n <= size {
			return k
		}
	}
	return -1
}

// ValueClassOfOffset returns the size class whose data regions contain the
// given device offset, or -1 if the offset is not in any value region.
func (l *Layout) ValueClassOfOffset(off int64) int {
	for k, size := range l.valClasses {
		regionLen := alignUp(l.ValuesPerCore * size)
		for c := 0; c < l.Cores; c++ {
			base := l.valDataOff[k][c]
			if off >= base && off < base+regionLen {
				return k
			}
		}
	}
	return -1
}

// MaxValueSize returns the largest value size class.
func (l *Layout) MaxValueSize() int64 {
	return l.valClasses[len(l.valClasses)-1]
}

// Regions enumerates the layout's named regions for the attribution
// layer's spatial heatmap (obs.Attrib.SetRegions). Per-core regions share
// a name — the exporter merges them — and each pool's control line and
// free ring are one region, since both are allocator state.
func (l *Layout) Regions() []obs.Region {
	if l.total == 0 {
		l.compute()
	}
	rs := []obs.Region{
		{Name: "header", Off: l.headerOff, Len: 2 * line},
		{Name: "epoch-record", Off: l.epochOff, Len: line},
	}
	if l.Counters > 0 {
		rs = append(rs, obs.Region{Name: "counters", Off: l.counterOff, Len: alignUp(l.Counters * counterStride)})
	}
	rs = append(rs, obs.Region{Name: "wal", Off: l.logOff, Len: alignUp(l.LogBytes)})
	for c := 0; c < l.Cores; c++ {
		rs = append(rs,
			obs.Region{Name: "row-free-ring", Off: l.rowCtlOff[c], Len: line + alignUp(l.RingCap*ringStride)},
			obs.Region{Name: "row-heap", Off: l.rowDataOff[c], Len: alignUp(l.RowsPerCore * l.RowSize)},
		)
	}
	for k, size := range l.valClasses {
		for c := 0; c < l.Cores; c++ {
			rs = append(rs,
				obs.Region{Name: "val-free-ring", Off: l.valCtlOff[k][c], Len: line + alignUp(l.RingCap*ringStride)},
				obs.Region{Name: "val-heap", Off: l.valDataOff[k][c], Len: alignUp(l.ValuesPerCore * size)},
			)
		}
	}
	if l.ScratchPerCore > 0 {
		for c := 0; c < l.Cores; c++ {
			rs = append(rs, obs.Region{Name: "scratch", Off: l.scratchOff[c], Len: alignUp(l.ScratchPerCore)})
		}
	}
	if l.IndexLogBytes > 0 {
		rs = append(rs, obs.Region{Name: "index-journal", Off: l.idxLogOff, Len: alignUp(l.IndexLogBytes)})
	}
	return rs
}

// header field slots (within headerOff region).
const (
	hdrMagic   = 0
	hdrVersion = 8
	// second line: parameters
	hdrCores    = 64
	hdrRowSize  = 72
	hdrRowsPC   = 80
	hdrValSize  = 88
	hdrValsPC   = 96
	hdrRingCap  = 104
	hdrLogBytes = 112
	hdrCounters = 120
	hdrScratch  = 16 // first line, after magic/version
	hdrIdxLog   = 24 // first line
	hdrValClass = 32 // first line: FNV of the value-class list
)

// Format writes the header and zeroes all control state, preparing a device
// for first use. The epoch record is set to 0: no epoch has been
// checkpointed yet.
func Format(dev *nvm.Device, l Layout) error {
	if l.total == 0 {
		l.compute()
	}
	if dev.Size() < l.total {
		return fmt.Errorf("pmem: device %d bytes, layout needs %d", dev.Size(), l.total)
	}
	// Formatting is allocator traffic for attribution purposes.
	td := dev.Tag(obs.CauseAlloc)
	td.Store64(l.headerOff+hdrMagic, Magic)
	td.Store64(l.headerOff+hdrVersion, LayoutVersion)
	td.Store64(l.headerOff+hdrScratch, uint64(l.ScratchPerCore))
	td.Store64(l.headerOff+hdrIdxLog, uint64(l.IndexLogBytes))
	td.Store64(l.headerOff+hdrValClass, l.valueClassHash())
	td.Store64(l.headerOff+hdrCores, uint64(l.Cores))
	td.Store64(l.headerOff+hdrRowSize, uint64(l.RowSize))
	td.Store64(l.headerOff+hdrRowsPC, uint64(l.RowsPerCore))
	td.Store64(l.headerOff+hdrValSize, uint64(l.ValueSize))
	td.Store64(l.headerOff+hdrValsPC, uint64(l.ValuesPerCore))
	td.Store64(l.headerOff+hdrRingCap, uint64(l.RingCap))
	td.Store64(l.headerOff+hdrLogBytes, uint64(l.LogBytes))
	td.Store64(l.headerOff+hdrCounters, uint64(l.Counters))
	td.Zero(l.epochOff, line)
	if l.Counters > 0 {
		td.Zero(l.counterOff, alignUp(l.Counters*counterStride))
	}
	// Log slot headers only (both parity slots); payload is length-guarded.
	td.Zero(l.logOff, line)
	td.Zero(l.logOff+l.LogBytes/2/line*line, line)
	for c := 0; c < l.Cores; c++ {
		td.Zero(l.rowCtlOff[c], line)
	}
	for k := range l.valCtlOff {
		for c := 0; c < l.Cores; c++ {
			td.Zero(l.valCtlOff[k][c], line)
		}
	}
	if l.IndexLogBytes > 0 {
		td.Zero(l.idxLogOff, line)
	}
	// One vectored persist: flush every initialized region, then a single
	// fence. Formatting used to fence per region — dozens of fences for a
	// many-core layout — for no ordering benefit, since nothing is valid
	// until the whole format is durable anyway.
	ranges := []nvm.Range{
		{Off: l.headerOff, N: 2 * line},
		{Off: l.epochOff, N: line},
		{Off: l.logOff, N: line},
		{Off: l.logOff + l.LogBytes/2/line*line, N: line},
	}
	if l.Counters > 0 {
		ranges = append(ranges, nvm.Range{Off: l.counterOff, N: alignUp(l.Counters * counterStride)})
	}
	for c := 0; c < l.Cores; c++ {
		ranges = append(ranges, nvm.Range{Off: l.rowCtlOff[c], N: line})
	}
	for k := range l.valCtlOff {
		for c := 0; c < l.Cores; c++ {
			ranges = append(ranges, nvm.Range{Off: l.valCtlOff[k][c], N: line})
		}
	}
	if l.IndexLogBytes > 0 {
		ranges = append(ranges, nvm.Range{Off: l.idxLogOff, N: line})
	}
	td.PersistRange(ranges...)
	return nil
}

// Attach validates that the device was formatted with a compatible layout
// and returns the layout reconstructed from the header.
func Attach(dev *nvm.Device, want Layout) (Layout, error) {
	if want.total == 0 {
		want.compute()
	}
	if dev.Load64(want.headerOff+hdrMagic) != Magic {
		return Layout{}, errors.New("pmem: device not formatted (bad magic)")
	}
	if v := dev.Load64(want.headerOff + hdrVersion); v != LayoutVersion {
		return Layout{}, fmt.Errorf("pmem: layout version %d, want %d", v, LayoutVersion)
	}
	check := func(off int64, got uint64, name string, want uint64) error {
		if got != want {
			return fmt.Errorf("pmem: header %s = %d, attach config says %d", name, got, want)
		}
		_ = off
		return nil
	}
	for _, c := range []struct {
		off  int64
		name string
		want uint64
	}{
		{hdrCores, "cores", uint64(want.Cores)},
		{hdrRowSize, "rowSize", uint64(want.RowSize)},
		{hdrRowsPC, "rowsPerCore", uint64(want.RowsPerCore)},
		{hdrValSize, "valueSize", uint64(want.ValueSize)},
		{hdrValsPC, "valuesPerCore", uint64(want.ValuesPerCore)},
		{hdrRingCap, "ringCap", uint64(want.RingCap)},
		{hdrLogBytes, "logBytes", uint64(want.LogBytes)},
		{hdrCounters, "counters", uint64(want.Counters)},
		{hdrScratch, "scratchPerCore", uint64(want.ScratchPerCore)},
		{hdrIdxLog, "indexLogBytes", uint64(want.IndexLogBytes)},
		{hdrValClass, "valueClasses", want.valueClassHash()},
	} {
		if err := check(c.off, dev.Load64(want.headerOff+c.off), c.name, c.want); err != nil {
			return Layout{}, err
		}
	}
	return want, nil
}

// valueClassHash digests the resolved class list for header validation.
func (l *Layout) valueClassHash() uint64 {
	h := idxFnvOffset
	for _, c := range l.valClasses {
		for i := 0; i < 8; i++ {
			h ^= uint64(byte(c >> (8 * i)))
			h *= idxFnvPrime
		}
	}
	return h
}

// EpochRecord manages the persistent checkpointed-epoch number.
type EpochRecord struct {
	dev *nvm.Device
	off int64
}

// NewEpochRecord returns the epoch record for a formatted device.
func NewEpochRecord(dev *nvm.Device, l Layout) *EpochRecord {
	return &EpochRecord{dev: dev, off: l.epochOff}
}

// Load returns the last checkpointed epoch (0 if none).
func (e *EpochRecord) Load() uint64 { return e.dev.Load64(e.off) }

// Store persists the checkpointed epoch number. Per Algorithm 1, the caller
// must already have fenced the epoch's data writes; Store issues its own
// trailing persist so the record itself is durable on return. The record
// commits the epoch's persist phase, so its traffic is attributed there.
func (e *EpochRecord) Store(epoch uint64) {
	td := e.dev.Tag(obs.CausePersistFinal)
	td.Store64(e.off, epoch)
	td.Persist(e.off, 8)
}

// counterStride is the per-counter footprint: two parity slots, so the
// checkpoint of epoch e never overwrites the slot recovery would read if
// the crash lands before e's epoch record commits.
const counterStride = 16

// Counter is a persistent 64-bit counter (used for TPC-C order ids, which
// Caracal generates non-deterministically and therefore must persist at
// epoch boundaries). Like the pool control offsets, each counter keeps two
// parity slots indexed by epoch: the checkpoint of epoch e writes slot
// e%2 and recovery reads slot ckpt%2. A single slot would be unsound —
// the checkpoint flushes counters before the epoch record commits, so a
// crash in between can leave post-epoch values durable while the epoch
// itself is replayed, applying every counter increment twice.
type Counter struct {
	dev *nvm.Device
	off int64
}

// NewCounter returns counter i.
func NewCounter(dev *nvm.Device, l Layout, i int64) *Counter {
	return &Counter{dev: dev, off: l.CounterOff(i)}
}

// Load reads the value checkpointed at the given epoch.
func (c *Counter) Load(epoch uint64) uint64 {
	return c.dev.Load64(c.off + int64(epoch%2)*8)
}

// Store writes the counter value into epoch's parity slot without
// persisting; the epoch checkpoint sequence flushes the counter region.
func (c *Counter) Store(v uint64, epoch uint64) {
	c.dev.Store64(c.off+int64(epoch%2)*8, v)
}

// Flush persists the counter's parity pair.
func (c *Counter) Flush() { c.dev.Flush(c.off, counterStride) }
