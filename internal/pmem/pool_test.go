package pmem

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"nvcaracal/internal/nvm"
)

func testLayout(t *testing.T) (Layout, *nvm.Device) {
	t.Helper()
	l := Layout{
		Cores:         2,
		RowSize:       256,
		RowsPerCore:   64,
		ValueSize:     512,
		ValuesPerCore: 64,
		RingCap:       256,
		LogBytes:      4096,
		Counters:      4,
	}
	if err := l.Finalize(); err != nil {
		t.Fatal(err)
	}
	dev := nvm.New(l.TotalBytes())
	if err := Format(dev, l); err != nil {
		t.Fatal(err)
	}
	return l, dev
}

func TestFormatAttach(t *testing.T) {
	l, dev := testLayout(t)
	if _, err := Attach(dev, l); err != nil {
		t.Fatalf("attach: %v", err)
	}
}

func TestAttachUnformatted(t *testing.T) {
	l := DefaultLayout(1, 16, 16)
	dev := nvm.New(l.TotalBytes())
	if _, err := Attach(dev, l); err == nil {
		t.Fatal("attach to unformatted device succeeded")
	}
}

func TestAttachParamMismatch(t *testing.T) {
	l, dev := testLayout(t)
	bad := l
	bad.RowsPerCore = 128
	if err := bad.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(dev, bad); err == nil {
		t.Fatal("attach with mismatched params succeeded")
	}
}

func TestLayoutValidation(t *testing.T) {
	cases := []func(*Layout){
		func(l *Layout) { l.Cores = 0 },
		func(l *Layout) { l.RowSize = 100 }, // not line multiple
		func(l *Layout) { l.ValueSize = 0 },
		func(l *Layout) { l.RowsPerCore = 0 },
		func(l *Layout) { l.RingCap = 0 },
		func(l *Layout) { l.LogBytes = 16 },
		func(l *Layout) { l.Counters = -1 },
	}
	for i, mutate := range cases {
		l := DefaultLayout(1, 16, 16)
		mutate(&l)
		if err := l.Finalize(); err == nil {
			t.Errorf("case %d: bad layout accepted", i)
		}
	}
}

func TestBumpAllocSequential(t *testing.T) {
	l, dev := testLayout(t)
	p := RowPool(dev, l, 0)
	prev := int64(-1)
	for i := 0; i < 10; i++ {
		off, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && off != prev+l.RowSize {
			t.Fatalf("alloc %d: off %d, want %d", i, off, prev+l.RowSize)
		}
		prev = off
	}
	if p.Bump() != 10 {
		t.Fatalf("bump = %d", p.Bump())
	}
}

func TestPoolExhaustion(t *testing.T) {
	l, dev := testLayout(t)
	p := RowPool(dev, l, 0)
	for i := int64(0); i < l.RowsPerCore; i++ {
		if _, err := p.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Alloc(); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("err = %v, want ErrPoolFull", err)
	}
}

func TestFreedSlotNotReusedBeforeCheckpoint(t *testing.T) {
	l, dev := testLayout(t)
	p := RowPool(dev, l, 0)
	off, _ := p.Alloc()
	p.Free(off)
	// Invariant 2: the freed slot must come from the bump region, not the
	// just-freed entry.
	got, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if got == off {
		t.Fatal("slot freed in current epoch was reallocated")
	}
}

func TestFreedSlotReusedAfterCheckpoint(t *testing.T) {
	l, dev := testLayout(t)
	p := RowPool(dev, l, 0)
	off, _ := p.Alloc()
	p.Free(off)
	p.Checkpoint(1)
	dev.Fence()
	p.Checkpointed()
	got, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if got != off {
		t.Fatalf("alloc after checkpoint = %d, want recycled %d", got, off)
	}
}

// runEpoch checkpoints the pool and persists the epoch record the way the
// engine does at an epoch boundary.
func runCheckpoint(dev *nvm.Device, rec *EpochRecord, epoch uint64, pools ...*Pool) {
	for _, p := range pools {
		p.Checkpoint(epoch)
	}
	dev.Fence()
	rec.Store(epoch)
	for _, p := range pools {
		p.Checkpointed()
	}
}

func TestCrashRevertsUncheckpointedAllocations(t *testing.T) {
	l, dev := testLayout(t)
	rec := NewEpochRecord(dev, l)
	p := RowPool(dev, l, 0)

	// Epoch 1: allocate 3 slots and checkpoint.
	for i := 0; i < 3; i++ {
		p.Alloc()
	}
	runCheckpoint(dev, rec, 1, p)

	// Epoch 2: allocate 5 more, free one, crash without checkpoint.
	for i := 0; i < 5; i++ {
		p.Alloc()
	}
	off := p.dataOff // free the first slot
	p.Free(off)
	dev.Crash(nvm.CrashStrict, 42)

	ckpt := rec.Load()
	if ckpt != 1 {
		t.Fatalf("checkpointed epoch = %d, want 1", ckpt)
	}
	p2 := RowPool(dev, l, 0)
	gc := p2.Recover(ckpt, true)
	if len(gc) != 0 {
		t.Fatalf("unexpected GC frees: %v", gc)
	}
	if p2.Bump() != 3 {
		t.Fatalf("recovered bump = %d, want 3", p2.Bump())
	}
	if p2.FreeCount() != 0 {
		t.Fatalf("recovered free count = %d, want 0 (free was reverted)", p2.FreeCount())
	}
}

func TestCrashPreservesCheckpointedFrees(t *testing.T) {
	l, dev := testLayout(t)
	rec := NewEpochRecord(dev, l)
	p := RowPool(dev, l, 0)

	a, _ := p.Alloc()
	b, _ := p.Alloc()
	p.Free(a)
	p.Free(b)
	runCheckpoint(dev, rec, 1, p)

	// Epoch 2 consumes one free entry, then crashes.
	got, _ := p.Alloc()
	if got != a {
		t.Fatalf("alloc = %d, want %d", got, a)
	}
	dev.Crash(nvm.CrashStrict, 7)

	p2 := RowPool(dev, l, 0)
	p2.Recover(rec.Load(), true)
	// The consume must be reverted: both entries back on the list.
	if p2.FreeCount() != 2 {
		t.Fatalf("free count = %d, want 2", p2.FreeCount())
	}
	fs := p2.FreeSet()
	if _, ok := fs[a]; !ok {
		t.Errorf("slot %d missing from free set", a)
	}
	if _, ok := fs[b]; !ok {
		t.Errorf("slot %d missing from free set", b)
	}
}

func TestGCEntriesAdoptedAfterCrash(t *testing.T) {
	l, dev := testLayout(t)
	rec := NewEpochRecord(dev, l)
	p := ValuePool(dev, l, 0, 0)

	a, _ := p.Alloc()
	b, _ := p.Alloc()
	c, _ := p.Alloc()
	runCheckpoint(dev, rec, 1, p)

	// Epoch 2: major GC frees a and b as stamped entries and fences them
	// durable (the init fence); then a transaction frees c (revertible);
	// then crash during execution.
	p.FreeGC(a, 2)
	p.FreeGC(b, 2)
	p.FlushRing()
	dev.Fence()
	p.Free(c)
	dev.Crash(nvm.CrashStrict, 9)

	p2 := ValuePool(dev, l, 0, 0)
	gc := p2.Recover(rec.Load(), true)
	if len(gc) != 2 || gc[0] != a || gc[1] != b {
		t.Fatalf("gc frees = %v, want [%d %d]", gc, a, b)
	}
	fs := p2.FreeSet()
	if _, ok := fs[a]; !ok {
		t.Error("GC-freed slot a lost")
	}
	if _, ok := fs[b]; !ok {
		t.Error("GC-freed slot b lost")
	}
	if _, ok := fs[c]; ok {
		t.Error("transaction free c survived crash (should revert)")
	}
	// Invariant: GC-freed slots must not be allocatable during replay of
	// the crashed epoch (tailCkpt is the old checkpoint tail).
	off, err := p2.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if off == a || off == b {
		t.Fatalf("GC-freed slot %d reallocated during replay window", off)
	}
}

func TestGCEntriesNotAdoptedWithoutReplay(t *testing.T) {
	// Same durable GC entries as above, but the recovery decides the
	// crashed epoch will not be replayed (its log never became durable):
	// the entries must be reverted, not adopted, because the rows that
	// referenced the freed slots were never rewritten.
	l, dev := testLayout(t)
	rec := NewEpochRecord(dev, l)
	p := ValuePool(dev, l, 0, 0)
	a, _ := p.Alloc()
	b, _ := p.Alloc()
	runCheckpoint(dev, rec, 1, p)
	p.FreeGC(a, 2)
	p.FreeGC(b, 2)
	p.FlushRing()
	dev.Fence()
	dev.Crash(nvm.CrashStrict, 11)

	p2 := ValuePool(dev, l, 0, 0)
	gc := p2.Recover(rec.Load(), false)
	if len(gc) != 0 {
		t.Fatalf("gc frees adopted without replay: %v", gc)
	}
	if p2.FreeCount() != 0 {
		t.Fatalf("free count = %d, want 0 (frees of the vanished epoch reverted)", p2.FreeCount())
	}
}

func TestGCEntriesPartialLandingAdoptsPrefix(t *testing.T) {
	// Only the fenced prefix of the crashed epoch's GC entries survives a
	// strict crash; the scan must adopt exactly that prefix.
	l, dev := testLayout(t)
	rec := NewEpochRecord(dev, l)
	p := ValuePool(dev, l, 0, 0)
	a, _ := p.Alloc()
	b, _ := p.Alloc()
	runCheckpoint(dev, rec, 1, p)
	p.FreeGC(a, 2)
	p.FlushRing()
	dev.Fence()
	p.FreeGC(b, 2) // written but never flushed: lost in a strict crash
	dev.Crash(nvm.CrashStrict, 13)

	p2 := ValuePool(dev, l, 0, 0)
	gc := p2.Recover(rec.Load(), true)
	if len(gc) != 1 || gc[0] != a {
		t.Fatalf("gc frees = %v, want [%d]", gc, a)
	}
}

func TestGCEntriesIgnoredWhenStale(t *testing.T) {
	l, dev := testLayout(t)
	rec := NewEpochRecord(dev, l)
	p := ValuePool(dev, l, 0, 0)
	a, _ := p.Alloc()
	// Epoch 1's GC entry, durable and then consumed by epoch 1's
	// checkpoint: the recovery scan for epoch 2's entries starts past it.
	p.FreeGC(a, 1)
	p.FlushRing()
	dev.Fence()
	runCheckpoint(dev, rec, 1, p)
	// Crash in epoch 2 before its GC appends anything.
	dev.Crash(nvm.CrashStrict, 3)
	p2 := ValuePool(dev, l, 0, 0)
	gc := p2.Recover(rec.Load(), true)
	if len(gc) != 0 {
		t.Fatalf("stale GC entries adopted: %v", gc)
	}
	if p2.FreeCount() != 1 {
		t.Fatalf("free count = %d, want 1", p2.FreeCount())
	}
}

func TestGCEntryWrongEpochNotAdopted(t *testing.T) {
	// A durable GC entry stamped for the wrong epoch (here: the already
	// checkpointed epoch 1, sitting beyond the checkpointed tail after a
	// torn checkpoint sequence) must fail the stamp check.
	l, dev := testLayout(t)
	rec := NewEpochRecord(dev, l)
	p := ValuePool(dev, l, 0, 0)
	a, _ := p.Alloc()
	runCheckpoint(dev, rec, 1, p)
	p.FreeGC(a, 1) // stamped epoch 1; recovery of ckpt=1 adopts only epoch-2 stamps
	p.FlushRing()
	dev.Fence()
	dev.Crash(nvm.CrashStrict, 5)
	p2 := ValuePool(dev, l, 0, 0)
	gc := p2.Recover(rec.Load(), true)
	if len(gc) != 0 {
		t.Fatalf("wrong-epoch GC entry adopted: %v", gc)
	}
}

func TestRingOverflowPanics(t *testing.T) {
	l, dev := testLayout(t)
	p := RowPool(dev, l, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected ring overflow panic")
		}
	}()
	for i := int64(0); i <= l.RingCap; i++ {
		p.Free(p.dataOff) // same slot repeatedly; only ring accounting matters
	}
}

func TestRingWraparound(t *testing.T) {
	l, dev := testLayout(t)
	rec := NewEpochRecord(dev, l)
	p := RowPool(dev, l, 0)
	// Cycle more entries than the ring capacity across epochs to force
	// wraparound, checkpointing each round so entries can be consumed.
	epoch := uint64(1)
	off, _ := p.Alloc()
	for i := int64(0); i < l.RingCap*3; i++ {
		p.Free(off)
		runCheckpoint(dev, rec, epoch, p)
		epoch++
		got, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if got != off {
			t.Fatalf("round %d: got %d, want %d", i, got, off)
		}
	}
}

func TestEpochRecord(t *testing.T) {
	l, dev := testLayout(t)
	rec := NewEpochRecord(dev, l)
	if rec.Load() != 0 {
		t.Fatalf("fresh record = %d", rec.Load())
	}
	rec.Store(7)
	dev.Crash(nvm.CrashStrict, 1)
	if rec.Load() != 7 {
		t.Fatalf("record after crash = %d, want 7", rec.Load())
	}
}

func TestCounters(t *testing.T) {
	l, dev := testLayout(t)
	c := NewCounter(dev, l, 2)
	c.Store(123, 1)
	c.Flush()
	dev.Fence()
	dev.Crash(nvm.CrashStrict, 1)
	if got := NewCounter(dev, l, 2).Load(1); got != 123 {
		t.Fatalf("counter = %d, want 123", got)
	}
	// The parity slots are independent: epoch 2's checkpoint must not
	// clobber the value recovery reads when epoch 2 doesn't commit.
	c.Store(456, 2)
	c.Flush()
	if got := c.Load(1); got != 123 {
		t.Fatalf("epoch-1 slot = %d after epoch-2 store, want 123", got)
	}
	if got := c.Load(2); got != 456 {
		t.Fatalf("epoch-2 slot = %d, want 456", got)
	}
}

func TestCounterOutOfRangePanics(t *testing.T) {
	l, _ := testLayout(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.CounterOff(l.Counters)
}

// TestQuickCrashRecoverMatchesModel drives a random alloc/free/checkpoint
// schedule against both the pool and a pure-DRAM model, crashes at a random
// point, and verifies the recovered pool matches the model's state at the
// last checkpoint.
func TestQuickCrashRecoverMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := Layout{
			Cores: 1, RowSize: 256, RowsPerCore: 128, ValueSize: 256,
			ValuesPerCore: 16, RingCap: 512, LogBytes: 4096, Counters: 0,
		}
		if err := l.Finalize(); err != nil {
			t.Fatal(err)
		}
		dev := nvm.New(l.TotalBytes())
		if err := Format(dev, l); err != nil {
			t.Fatal(err)
		}
		rec := NewEpochRecord(dev, l)
		p := RowPool(dev, l, 0)

		type state struct {
			bump  int64
			frees []int64 // logical free list front..back
		}
		var ckpt state // model at last checkpoint
		live := state{}
		allocated := map[int64]bool{}
		epoch := uint64(1)
		ckptTailLen := 0 // number of free entries consumable this epoch

		steps := 30 + rng.Intn(60)
		for i := 0; i < steps; i++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // alloc
				off, err := p.Alloc()
				if err != nil {
					continue
				}
				var want int64
				if ckptTailLen > 0 && len(live.frees) > 0 {
					want = live.frees[0]
					live.frees = live.frees[1:]
					ckptTailLen--
				} else {
					want = l.RowDataOff(0) + live.bump*l.RowSize
					live.bump++
				}
				if off != want {
					t.Logf("seed %d step %d: alloc %d, model %d", seed, i, off, want)
					return false
				}
				allocated[off] = true
			case 4, 5, 6: // free an allocated slot
				for off := range allocated {
					delete(allocated, off)
					p.Free(off)
					live.frees = append(live.frees, off)
					break
				}
			default: // checkpoint
				runCheckpoint(dev, rec, epoch, p)
				epoch++
				ckpt = state{bump: live.bump, frees: append([]int64(nil), live.frees...)}
				ckptTailLen = len(live.frees)
			}
		}
		dev.Crash(nvm.CrashStrict, seed)
		p2 := RowPool(dev, l, 0)
		p2.Recover(rec.Load(), true)
		if p2.Bump() != ckpt.bump {
			t.Logf("seed %d: bump %d, model %d", seed, p2.Bump(), ckpt.bump)
			return false
		}
		if p2.FreeCount() != int64(len(ckpt.frees)) {
			t.Logf("seed %d: freeCount %d, model %d", seed, p2.FreeCount(), len(ckpt.frees))
			return false
		}
		fs := p2.FreeSet()
		for _, off := range ckpt.frees {
			if _, ok := fs[off]; !ok {
				t.Logf("seed %d: slot %d missing", seed, off)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
