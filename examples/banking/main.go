// Banking: account transfers with application-level aborts, a conservation
// invariant, and a crash in the middle of the run — the scenario the
// paper's intro motivates (orders against popular items map to transfers
// against hot accounts).
//
//	go run ./examples/banking
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"

	"nvcaracal"
)

const tableAccounts = uint32(1)

const (
	txnOpen     uint16 = 1
	txnTransfer uint16 = 2
)

func encBal(v int64) []byte { return binary.LittleEndian.AppendUint64(nil, uint64(v)) }
func decBal(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }

func openAccount(id uint64, balance int64) *nvcaracal.Txn {
	input := binary.LittleEndian.AppendUint64(nil, id)
	input = binary.LittleEndian.AppendUint64(input, uint64(balance))
	return &nvcaracal.Txn{
		TypeID: txnOpen,
		Input:  input,
		Ops:    []nvcaracal.Op{{Table: tableAccounts, Key: id, Kind: nvcaracal.OpInsert}},
		Exec: func(ctx *nvcaracal.Ctx) {
			ctx.Insert(tableAccounts, id, encBal(balance))
		},
	}
}

// transfer moves amount from one account to another, aborting (before any
// write, per the deterministic-abort rule) when funds are insufficient.
func transfer(from, to uint64, amount int64) *nvcaracal.Txn {
	input := binary.LittleEndian.AppendUint64(nil, from)
	input = binary.LittleEndian.AppendUint64(input, to)
	input = binary.LittleEndian.AppendUint64(input, uint64(amount))
	return &nvcaracal.Txn{
		TypeID: txnTransfer,
		Input:  input,
		Ops: []nvcaracal.Op{
			{Table: tableAccounts, Key: from, Kind: nvcaracal.OpUpdate},
			{Table: tableAccounts, Key: to, Kind: nvcaracal.OpUpdate},
		},
		Exec: func(ctx *nvcaracal.Ctx) {
			src, _ := ctx.Read(tableAccounts, from)
			if decBal(src) < amount {
				ctx.Abort()
				return
			}
			dst, _ := ctx.Read(tableAccounts, to)
			ctx.Write(tableAccounts, from, encBal(decBal(src)-amount))
			ctx.Write(tableAccounts, to, encBal(decBal(dst)+amount))
		},
	}
}

func registry() *nvcaracal.Registry {
	reg := nvcaracal.NewRegistry()
	reg.Register(txnOpen, func(d []byte, _ *nvcaracal.DB) (*nvcaracal.Txn, error) {
		return openAccount(binary.LittleEndian.Uint64(d), int64(binary.LittleEndian.Uint64(d[8:]))), nil
	})
	reg.Register(txnTransfer, func(d []byte, _ *nvcaracal.DB) (*nvcaracal.Txn, error) {
		return transfer(binary.LittleEndian.Uint64(d), binary.LittleEndian.Uint64(d[8:]),
			int64(binary.LittleEndian.Uint64(d[16:]))), nil
	})
	return reg
}

const (
	accounts       = 1000
	initialBalance = int64(100)
	hotAccounts    = 4 // a few celebrity accounts receive most transfers
)

func totalMoney(db *nvcaracal.DB) int64 {
	var total int64
	for id := uint64(0); id < accounts; id++ {
		if v, ok := db.Get(tableAccounts, id); ok {
			total += decBal(v)
		}
	}
	return total
}

func main() {
	cfg := nvcaracal.Config{Registry: registry()}
	db, dev, err := nvcaracal.OpenWithDevice(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Open all accounts in one epoch.
	var openBatch []*nvcaracal.Txn
	for id := uint64(0); id < accounts; id++ {
		openBatch = append(openBatch, openAccount(id, initialBalance))
	}
	if _, err := db.RunEpoch(openBatch); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("opened %d accounts, total money %d\n", accounts, totalMoney(db))

	// Run transfer epochs. Most transfers hit the hot accounts, the
	// contended case where the deterministic engine shines: many writes to
	// the same row in an epoch collapse into one NVMM write.
	rng := rand.New(rand.NewSource(7))
	genBatch := func(n int) []*nvcaracal.Txn {
		batch := make([]*nvcaracal.Txn, 0, n)
		for len(batch) < n {
			from := uint64(rng.Intn(accounts))
			var to uint64
			if rng.Intn(10) < 8 {
				to = uint64(rng.Intn(hotAccounts))
			} else {
				to = uint64(rng.Intn(accounts))
			}
			if from == to {
				continue
			}
			batch = append(batch, transfer(from, to, int64(rng.Intn(30)+1)))
		}
		return batch
	}

	var committed, aborted int
	for epoch := 0; epoch < 5; epoch++ {
		res, err := db.RunEpoch(genBatch(500))
		if err != nil {
			log.Fatal(err)
		}
		committed += res.Committed
		aborted += res.Aborted
	}
	fmt.Printf("ran 2500 transfers: %d committed, %d aborted (insufficient funds)\n", committed, aborted)
	fmt.Printf("total money after transfers: %d (must be %d)\n", totalMoney(db), accounts*initialBalance)

	m := db.Metrics()
	fmt.Printf("NVMM writes avoided: %.0f%% of versions stayed in DRAM\n", 100*m.TransientShare())

	// Pull the plug and recover.
	fmt.Println("\nsimulating power failure...")
	dev.Crash(nvcaracal.CrashStrict, 1)
	db2, rep, err := nvcaracal.Recover(dev, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: checkpoint epoch %d, scanned %d rows in %v\n",
		rep.CheckpointEpoch, rep.RowsScanned, rep.Total().Round(1000))
	if got := totalMoney(db2); got != accounts*initialBalance {
		log.Fatalf("money not conserved after recovery: %d", got)
	}
	fmt.Println("conservation invariant holds after recovery ✓")
}
