// Recovery: exercises the dual-version checkpointing protocol under an
// adversarial crash. A fail-point power-fails the device midway through an
// epoch's persists; recovery repairs any torn version descriptors, reverts
// the allocators to the last checkpoint, and deterministically replays the
// interrupted epoch from the input log. The example then verifies the
// database matches a shadow model.
//
//	go run ./examples/recovery
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"

	"nvcaracal"
)

const table = uint32(1)

const (
	txnPut uint16 = 1
	txnApp uint16 = 2
)

func putTxn(key uint64, val []byte, insert bool) *nvcaracal.Txn {
	kind := nvcaracal.OpUpdate
	flag := byte(0)
	if insert {
		kind, flag = nvcaracal.OpInsert, 1
	}
	input := append(binary.LittleEndian.AppendUint64(nil, key), flag)
	input = append(input, val...)
	return &nvcaracal.Txn{
		TypeID: txnPut,
		Input:  input,
		Ops:    []nvcaracal.Op{{Table: table, Key: key, Kind: kind}},
		Exec: func(ctx *nvcaracal.Ctx) {
			ctx.Write(table, key, val)
		},
	}
}

// appendTxn reads a row and appends one byte: replaying it must observe
// exactly the same prior state to produce the same result.
func appendTxn(key uint64, suffix byte) *nvcaracal.Txn {
	input := append(binary.LittleEndian.AppendUint64(nil, key), suffix)
	return &nvcaracal.Txn{
		TypeID: txnApp,
		Input:  input,
		Ops:    []nvcaracal.Op{{Table: table, Key: key, Kind: nvcaracal.OpUpdate}},
		Exec: func(ctx *nvcaracal.Ctx) {
			old, _ := ctx.Read(table, key)
			ctx.Write(table, key, append(append([]byte(nil), old...), suffix))
		},
	}
}

func registry() *nvcaracal.Registry {
	reg := nvcaracal.NewRegistry()
	reg.Register(txnPut, func(d []byte, _ *nvcaracal.DB) (*nvcaracal.Txn, error) {
		return putTxn(binary.LittleEndian.Uint64(d), d[9:], d[8] == 1), nil
	})
	reg.Register(txnApp, func(d []byte, _ *nvcaracal.DB) (*nvcaracal.Txn, error) {
		return appendTxn(binary.LittleEndian.Uint64(d), d[8]), nil
	})
	return reg
}

const keys = 200

func main() {
	cfg := nvcaracal.Config{Registry: registry()}
	db, dev, err := nvcaracal.OpenWithDevice(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Shadow model: what the database must contain if epochs are atomic.
	model := map[uint64][]byte{}

	var loadBatch []*nvcaracal.Txn
	for k := uint64(0); k < keys; k++ {
		v := []byte{byte(k)}
		loadBatch = append(loadBatch, putTxn(k, v, true))
		model[k] = v
	}
	if _, err := db.RunEpoch(loadBatch); err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	genEpoch := func() ([]*nvcaracal.Txn, map[uint64][]byte) {
		shadow := map[uint64][]byte{}
		for k, v := range model {
			shadow[k] = append([]byte(nil), v...)
		}
		var batch []*nvcaracal.Txn
		for i := 0; i < 300; i++ {
			k := uint64(rng.Intn(keys))
			b := byte('a' + rng.Intn(26))
			batch = append(batch, appendTxn(k, b))
			shadow[k] = append(shadow[k], b)
		}
		return batch, shadow
	}

	// Two committed epochs.
	for i := 0; i < 2; i++ {
		batch, shadow := genEpoch()
		if _, err := db.RunEpoch(batch); err != nil {
			log.Fatal(err)
		}
		model = shadow
	}
	fmt.Printf("committed %d epochs\n", db.Epoch())

	// Doom the next epoch with a fail-point deep enough that the input log
	// commits but the epoch checkpoint does not.
	batch, shadow := genEpoch()
	fmt.Println("arming fail-point and running the doomed epoch...")
	func() {
		defer func() {
			if r := recover(); r != nil && r != nvcaracal.ErrInjectedCrash {
				panic(r)
			}
		}()
		dev.SetFailAfter(500)
		db.RunEpoch(batch)
	}()
	dev.Crash(nvcaracal.CrashStrict, 99)
	fmt.Println("power failed mid-epoch; recovering...")

	db2, rep, err := nvcaracal.Recover(dev, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery: checkpoint=%d replayed=%d txns=%d repaired=%d (total %v)\n",
		rep.CheckpointEpoch, rep.ReplayedEpoch, rep.TxnsReplayed, rep.RowsRepaired,
		rep.Total().Round(1000))

	// The doomed epoch either replayed in full or vanished entirely.
	expect := model
	if rep.ReplayedEpoch != 0 {
		expect = shadow
	}
	for k := uint64(0); k < keys; k++ {
		got, ok := db2.Get(table, k)
		if !ok || !bytes.Equal(got, expect[k]) {
			log.Fatalf("key %d mismatch after recovery: got %q want %q", k, got, expect[k])
		}
	}
	fmt.Printf("all %d rows match the shadow model: epoch atomicity held ✓\n", keys)
}
