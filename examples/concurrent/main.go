// Concurrent submission: serve transactions from many goroutines through
// the group-commit front-end instead of hand-assembling epoch batches.
//
//	go run ./examples/concurrent
//
// A Submitter sits between concurrent clients and the single-threaded epoch
// pipeline: goroutines call Submit and get a future; a batch former closes
// an epoch once MaxBatch transactions accumulate or MaxDelay elapses, runs
// it through the engine, and resolves every future once the epoch is
// durable. Clients never coordinate with each other, yet every transaction
// still executes in a deterministic, logged epoch.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"
	"time"

	"nvcaracal"
)

const tableAccounts = uint32(1)

// depositTxn inserts or tops up one account. As in the quickstart, the
// write set is declared up front and Input lets the registered decoder
// rebuild the transaction during crash recovery.
func depositTxn(account uint64, amount uint64, insert bool) *nvcaracal.Txn {
	kind := nvcaracal.OpUpdate
	flag := byte(0)
	if insert {
		kind = nvcaracal.OpInsert
		flag = 1
	}
	input := binary.LittleEndian.AppendUint64(nil, account)
	input = binary.LittleEndian.AppendUint64(input, amount)
	input = append(input, flag)
	return &nvcaracal.Txn{
		TypeID: 1,
		Input:  input,
		Ops:    []nvcaracal.Op{{Table: tableAccounts, Key: account, Kind: kind}},
		Exec: func(ctx *nvcaracal.Ctx) {
			var balance uint64
			if !insert {
				old, _ := ctx.Read(tableAccounts, account)
				balance = binary.LittleEndian.Uint64(old)
			}
			ctx.Write(tableAccounts, account,
				binary.LittleEndian.AppendUint64(nil, balance+amount))
		},
	}
}

func main() {
	reg := nvcaracal.NewRegistry()
	reg.Register(1, func(d []byte, _ *nvcaracal.DB) (*nvcaracal.Txn, error) {
		return depositTxn(
			binary.LittleEndian.Uint64(d),
			binary.LittleEndian.Uint64(d[8:]),
			d[16] == 1), nil
	})

	db, err := nvcaracal.Open(nvcaracal.Config{Registry: reg})
	if err != nil {
		log.Fatal(err)
	}

	// Seed the accounts with one hand-batched epoch, then hand the database
	// to the front-end. While a Submitter is open it owns the epoch pipeline;
	// don't call RunEpoch directly.
	const accounts = 8
	var seed []*nvcaracal.Txn
	for a := uint64(1); a <= accounts; a++ {
		seed = append(seed, depositTxn(a, 100, true))
	}
	if _, err := db.RunEpoch(seed); err != nil {
		log.Fatal(err)
	}

	s := nvcaracal.NewSubmitter(db, nvcaracal.SubmitterConfig{
		MaxBatch: 64,                     // close an epoch at 64 txns...
		MaxDelay: 500 * time.Microsecond, // ...or after 500µs, whichever first
	})

	// 8 clients each deposit into every account concurrently. Each Submit
	// returns a future; Wait blocks until the transaction's epoch is durable.
	const clients, deposits = 8, 25
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < deposits; i++ {
				fut, err := s.Submit(depositTxn(uint64(1+(c+i)%accounts), 1, false))
				if err != nil {
					log.Fatal(err)
				}
				if r := fut.Wait(); r.Err != nil || !r.Committed {
					log.Fatalf("deposit lost: %+v", r)
				}
			}
		}(c)
	}
	wg.Wait()

	// Close flushes any partially formed batch and stops the pipeline; after
	// it returns the database is safe to drive directly again.
	if err := s.Close(); err != nil {
		log.Fatal(err)
	}

	var totalBalance uint64
	for a := uint64(1); a <= accounts; a++ {
		v, _ := db.Get(tableAccounts, a)
		totalBalance += binary.LittleEndian.Uint64(v)
	}
	fmt.Printf("%d clients × %d deposits ran in %d epochs\n",
		clients, deposits, db.Epoch()-1)
	fmt.Printf("total balance: %d (seeded %d + deposited %d)\n",
		totalBalance, accounts*100, clients*deposits)
}
