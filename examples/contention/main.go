// Contention: reproduces the paper's central claim at toy scale — the more
// contended the workload, the fewer NVMM writes the deterministic engine
// performs, because all intermediate versions of a hot row stay in DRAM
// and only the final write per epoch is persisted.
//
//	go run ./examples/contention
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"time"

	"nvcaracal"
)

const table = uint32(1)

const (
	txnInsert uint16 = 1
	txnRMW    uint16 = 2
)

func insertTxn(key uint64) *nvcaracal.Txn {
	return &nvcaracal.Txn{
		TypeID: txnInsert,
		Input:  binary.LittleEndian.AppendUint64(nil, key),
		Ops:    []nvcaracal.Op{{Table: table, Key: key, Kind: nvcaracal.OpInsert}},
		Exec: func(ctx *nvcaracal.Ctx) {
			ctx.Insert(table, key, make([]byte, 100))
		},
	}
}

func rmwTxn(key uint64, tag byte) *nvcaracal.Txn {
	input := append(binary.LittleEndian.AppendUint64(nil, key), tag)
	return &nvcaracal.Txn{
		TypeID: txnRMW,
		Input:  input,
		Ops:    []nvcaracal.Op{{Table: table, Key: key, Kind: nvcaracal.OpUpdate}},
		Exec: func(ctx *nvcaracal.Ctx) {
			old, _ := ctx.Read(table, key)
			buf := make([]byte, len(old))
			copy(buf, old)
			buf[0] = tag
			ctx.Write(table, key, buf)
		},
	}
}

func registry() *nvcaracal.Registry {
	reg := nvcaracal.NewRegistry()
	reg.Register(txnInsert, func(d []byte, _ *nvcaracal.DB) (*nvcaracal.Txn, error) {
		return insertTxn(binary.LittleEndian.Uint64(d)), nil
	})
	reg.Register(txnRMW, func(d []byte, _ *nvcaracal.DB) (*nvcaracal.Txn, error) {
		return rmwTxn(binary.LittleEndian.Uint64(d), d[8]), nil
	})
	return reg
}

const (
	rows      = 5_000
	hotRows   = 8
	epochTxns = 2_000
	epochs    = 4
)

// run measures one contention level: hotFrac of the operations target the
// hot rows.
func run(hotFrac float64) (tps float64, transientShare float64, nvmmWrites int64) {
	db, dev, err := nvcaracal.OpenWithDevice(nvcaracal.Config{
		Registry: registry(),
		// Charge a simulated NVMM latency so the throughput difference is
		// visible, not just the write counts.
		NVMMReadLatency:  60 * time.Nanosecond,
		NVMMWriteLatency: 250 * time.Nanosecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	var loadBatch []*nvcaracal.Txn
	for k := uint64(0); k < rows; k++ {
		loadBatch = append(loadBatch, insertTxn(k))
	}
	if _, err := db.RunEpoch(loadBatch); err != nil {
		log.Fatal(err)
	}
	devBase := dev.Stats()
	metBase := db.Metrics()

	rng := rand.New(rand.NewSource(2))
	var total time.Duration
	var committed int
	for e := 0; e < epochs; e++ {
		batch := make([]*nvcaracal.Txn, epochTxns)
		for i := range batch {
			var k uint64
			if rng.Float64() < hotFrac {
				k = uint64(rng.Intn(hotRows))
			} else {
				k = uint64(hotRows + rng.Intn(rows-hotRows))
			}
			batch[i] = rmwTxn(k, byte(i))
		}
		start := time.Now()
		res, err := db.RunEpoch(batch)
		if err != nil {
			log.Fatal(err)
		}
		total += time.Since(start)
		committed += res.Committed
	}
	m := db.Metrics().Sub(metBase)
	d := dev.Stats().Sub(devBase)
	return float64(committed) / total.Seconds(), m.TransientShare(), d.LineWrites
}

func main() {
	fmt.Println("contention    throughput   DRAM-absorbed   NVMM line writes")
	for _, hotFrac := range []float64{0.0, 0.4, 0.7, 0.9} {
		tps, share, writes := run(hotFrac)
		fmt.Printf("   %3.0f%%     %8.0f tps      %5.1f%%         %10d\n",
			hotFrac*100, tps, share*100, writes)
	}
	fmt.Println("\nhigher contention -> more version writes absorbed by DRAM ->")
	fmt.Println("fewer NVMM writes -> higher throughput: the paper's Figure 7 trend.")
}
