// Quickstart: open a database, define a transaction type, run epochs, and
// read the results back.
//
//	go run ./examples/quickstart
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"nvcaracal"
)

// Every row lives in a table identified by a uint32; keys are uint64.
const tableGreetings = uint32(1)

// putTxn builds a deterministic one-shot transaction that inserts or
// updates one row. The write set (Ops) is declared up front — that is what
// lets the engine pre-create row versions and run the whole epoch without
// locks or aborts. Input carries the parameters that the registered
// decoder needs to rebuild the transaction during crash recovery.
func putTxn(key uint64, value string, insert bool) *nvcaracal.Txn {
	kind := nvcaracal.OpUpdate
	flag := byte(0)
	if insert {
		kind = nvcaracal.OpInsert
		flag = 1
	}
	input := append(binary.LittleEndian.AppendUint64(nil, key), flag)
	input = append(input, value...)
	return &nvcaracal.Txn{
		TypeID: 1,
		Input:  input,
		Ops:    []nvcaracal.Op{{Table: tableGreetings, Key: key, Kind: kind}},
		Exec: func(ctx *nvcaracal.Ctx) {
			ctx.Write(tableGreetings, key, []byte(value))
		},
	}
}

func main() {
	// The registry maps logged transaction types back to code, so a crashed
	// epoch can be replayed deterministically.
	reg := nvcaracal.NewRegistry()
	reg.Register(1, func(d []byte, _ *nvcaracal.DB) (*nvcaracal.Txn, error) {
		key := binary.LittleEndian.Uint64(d)
		return putTxn(key, string(d[9:]), d[8] == 1), nil
	})

	db, err := nvcaracal.Open(nvcaracal.Config{Registry: reg})
	if err != nil {
		log.Fatal(err)
	}

	// Epoch 1: insert a few rows. All transactions in a batch execute
	// concurrently but behave exactly as if run one after another in batch
	// order.
	res, err := db.RunEpoch([]*nvcaracal.Txn{
		putTxn(1, "hello", true),
		putTxn(2, "persistent", true),
		putTxn(3, "world", true),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epoch %d: %d committed\n", res.Epoch, res.Committed)

	// Epoch 2: update a row. Only the final write per row per epoch goes to
	// (simulated) NVMM; intermediate versions stay in DRAM.
	if _, err := db.RunEpoch([]*nvcaracal.Txn{
		putTxn(2, "durable", false),
		putTxn(2, "very durable", false), // same epoch, later serial order wins
	}); err != nil {
		log.Fatal(err)
	}

	for key := uint64(1); key <= 3; key++ {
		v, ok := db.Get(tableGreetings, key)
		fmt.Printf("key %d -> %q (found=%v)\n", key, v, ok)
	}

	m := db.Metrics()
	fmt.Printf("versions written: %d transient (DRAM-only), %d persistent (NVMM)\n",
		m.TransientVersions, m.PersistentVersions)
}
