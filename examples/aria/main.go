// Aria: the paper's §7 integration target realized — Aria-style
// deterministic concurrency control (no declared write sets; snapshot
// execution + deterministic conflict detection) running on the same NVMM
// dual-version checkpointing substrate, side by side with the
// Caracal-style path.
//
// The example contrasts the two designs under contention: Caracal-style
// epochs commit every transaction (intermediate versions absorbed by
// DRAM), while Aria must abort and resubmit conflicting transactions —
// the trade-off for not needing write sets up front.
//
//	go run ./examples/aria
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"

	"nvcaracal"
)

const table = uint32(1)

const (
	txSet uint16 = 1
	txRMW uint16 = 2
)

func ariaSet(key uint64, val []byte) *nvcaracal.AriaTxn {
	in := binary.LittleEndian.AppendUint64(nil, key)
	in = append(in, val...)
	return &nvcaracal.AriaTxn{
		TypeID: txSet, Input: in,
		Exec: func(ctx *nvcaracal.AriaCtx) {
			ctx.Write(table, key, val)
		},
	}
}

func ariaRMW(key uint64, suffix byte) *nvcaracal.AriaTxn {
	in := append(binary.LittleEndian.AppendUint64(nil, key), suffix)
	return &nvcaracal.AriaTxn{
		TypeID: txRMW, Input: in,
		Exec: func(ctx *nvcaracal.AriaCtx) {
			old, _ := ctx.Read(table, key)
			ctx.Write(table, key, append(append([]byte(nil), old...), suffix))
		},
	}
}

func registry() *nvcaracal.AriaRegistry {
	reg := nvcaracal.NewAriaRegistry()
	reg.Register(txSet, func(d []byte, _ *nvcaracal.DB) (*nvcaracal.AriaTxn, error) {
		return ariaSet(binary.LittleEndian.Uint64(d), d[8:]), nil
	})
	reg.Register(txRMW, func(d []byte, _ *nvcaracal.DB) (*nvcaracal.AriaTxn, error) {
		return ariaRMW(binary.LittleEndian.Uint64(d), d[8]), nil
	})
	return reg
}

func main() {
	cfg := nvcaracal.Config{AriaRegistry: registry(), Registry: nvcaracal.NewRegistry()}
	db, dev, err := nvcaracal.OpenWithDevice(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Populate 100 rows in one Aria epoch (no conflicts: distinct keys).
	var load []*nvcaracal.AriaTxn
	for k := uint64(0); k < 100; k++ {
		load = append(load, ariaSet(k, []byte{byte(k)}))
	}
	res, err := db.RunEpochAria(load)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rows in one Aria epoch (%d committed)\n", db.RowCount(), res.Committed)

	// Contended RMWs: 50 transactions over 4 hot keys. Aria commits one
	// writer per key per epoch and defers the rest — watch it converge.
	rng := rand.New(rand.NewSource(1))
	batch := make([]*nvcaracal.AriaTxn, 50)
	for i := range batch {
		batch[i] = ariaRMW(uint64(rng.Intn(4)), byte('a'+i%26))
	}
	round := 1
	totalCommitted := 0
	for len(batch) > 0 {
		res, err := db.RunEpochAria(batch)
		if err != nil {
			log.Fatal(err)
		}
		totalCommitted += res.Committed
		fmt.Printf("round %d: %d committed, %d deferred on conflicts\n",
			round, res.Committed, res.ConflictAborted)
		batch = res.Deferred
		round++
	}
	fmt.Printf("all %d contended transactions committed after %d rounds\n", totalCommitted, round-1)
	fmt.Println("(a Caracal-style epoch commits all 50 in one round — the price")
	fmt.Println(" Aria pays for not declaring write sets up front)")

	// Crash mid-flight and recover: Aria epochs replay deterministically
	// from the same input log.
	batch2 := []*nvcaracal.AriaTxn{ariaRMW(0, 'Z'), ariaRMW(1, 'Z')}
	func() {
		defer func() {
			if r := recover(); r != nil && r != nvcaracal.ErrInjectedCrash {
				panic(r)
			}
		}()
		dev.SetFailAfter(20)
		db.RunEpochAria(batch2)
	}()
	dev.Crash(nvcaracal.CrashStrict, 7)
	db2, rep, err := nvcaracal.Recover(dev, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncrashed mid-epoch and recovered: checkpoint=%d replayed=%d (%d txns)\n",
		rep.CheckpointEpoch, rep.ReplayedEpoch, rep.TxnsReplayed)
	v, _ := db2.Get(table, 0)
	fmt.Printf("key 0 after recovery: %d bytes (deterministic replay preserved every committed epoch)\n", len(v))
}
