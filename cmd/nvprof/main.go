// nvprof is the profiling companion to nvtop: it captures profiles from a
// running engine's /debug/nvcaracal/pprof endpoints and reads pprof files
// without external tooling (the repo-local pprof decoder in internal/prof).
//
//	nvprof capture [-addr HOST:PORT] [-kind cpu|trace|heap|...] \
//	        [-seconds F] [-epochs N] [-o FILE]
//	    capture a profile; -epochs N bounds the CPU/trace window by the
//	    engine's committed-epoch gauge instead of wall clock
//	nvprof top [-n 20] [-type NAME] [-phase NAME] FILE
//	    symbolized flat/cum hotspots, optionally restricted to one engine
//	    phase's samples
//	nvprof diff [-n 20] [-type NAME] OLD NEW
//	    largest per-function flat deltas between two profiles
//	nvprof phases [-n 5] [-type NAME] [-json] FILE
//	    phase-attribution report: profile value split by the engine's
//	    "phase" goroutine labels, with each phase's device-model share
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"nvcaracal/internal/prof"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "capture":
		err = runCapture(os.Args[2:])
	case "top":
		err = runTop(os.Args[2:])
	case "diff":
		err = runDiff(os.Args[2:])
	case "phases":
		err = runPhases(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "nvprof: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "nvprof %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  nvprof capture [-addr 127.0.0.1:8077] [-kind cpu|trace|heap|allocs|mutex|block|goroutine] [-seconds F] [-epochs N] [-max-wait D] [-o FILE]
  nvprof top [-n 20] [-type NAME] [-phase NAME] FILE
  nvprof diff [-n 20] [-type NAME] OLD NEW
  nvprof phases [-n 5] [-type NAME] [-json] FILE
`)
}

func runCapture(args []string) error {
	fs := flag.NewFlagSet("capture", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8077", "engine debug address")
	kind := fs.String("kind", "cpu", "profile kind: cpu, trace, heap, allocs, mutex, block, goroutine, threadcreate")
	seconds := fs.Float64("seconds", 2, "wall-clock capture window (cpu/trace)")
	epochs := fs.Int("epochs", 0, "bound the cpu/trace window by N committed epochs instead of wall clock")
	maxWait := fs.Duration("max-wait", 30*time.Second, "epoch-window upper bound")
	out := fs.String("o", "", "output file (default <kind>.pb.gz, trace.out for traces)")
	fs.Parse(args)

	endpoint := *kind
	if endpoint == "cpu" {
		endpoint = "profile"
	}
	q := url.Values{}
	if *epochs > 0 {
		q.Set("epochs", fmt.Sprint(*epochs))
		q.Set("max-wait", maxWait.String())
	} else if endpoint == "profile" || endpoint == "trace" {
		q.Set("seconds", fmt.Sprint(*seconds))
	}
	u := url.URL{Scheme: "http", Host: *addr, Path: prof.PprofPath + endpoint, RawQuery: q.Encode()}

	client := &http.Client{Timeout: *maxWait + time.Duration(*seconds*float64(time.Second)) + 30*time.Second}
	resp, err := client.Get(u.String())
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", u.String(), resp.Status, strings.TrimSpace(string(body)))
	}

	file := *out
	if file == "" {
		if endpoint == "trace" {
			file = "trace.out"
		} else {
			file = *kind + ".pb.gz"
		}
	}
	if err := os.WriteFile(file, body, 0o644); err != nil {
		return err
	}
	msg := fmt.Sprintf("wrote %s (%d bytes)", file, len(body))
	if s, e := resp.Header.Get("X-Prof-Epoch-Start"), resp.Header.Get("X-Prof-Epoch-End"); s != "" && s != e {
		msg += fmt.Sprintf(", epochs %s..%s", s, e)
	}
	if el := resp.Header.Get("X-Prof-Elapsed"); el != "" {
		msg += ", elapsed " + el
	}
	fmt.Println(msg)
	return nil
}

func loadProfile(path string) (*prof.Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := prof.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

func runTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	n := fs.Int("n", 20, "entries to print")
	typ := fs.String("type", "", "sample type (default: last column, the pprof default)")
	phase := fs.String("phase", "", "restrict to samples of one engine phase (log, init, execute, persist, commit, ...)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("want exactly one profile file, got %d", fs.NArg())
	}
	p, err := loadProfile(fs.Arg(0))
	if err != nil {
		return err
	}
	idx, err := p.SampleIndex(*typ)
	if err != nil {
		return err
	}
	unit := p.SampleTypes[idx].Unit
	labelKey := ""
	if *phase != "" {
		labelKey = prof.LabelPhase
	}
	entries := prof.Top(p, idx, *n, labelKey, *phase)
	total := prof.Total(p, idx)
	fmt.Printf("%s %s, total %s", p.SampleTypes[idx].Type, unit, prof.FormatValue(total, unit))
	if *phase != "" {
		fmt.Printf(", phase %s", *phase)
	}
	fmt.Println()
	fmt.Printf("%12s %7s %12s  %s\n", "flat", "flat%", "cum", "function")
	for _, e := range entries {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(e.Flat) / float64(total)
		}
		fmt.Printf("%12s %6.2f%% %12s  %s\n",
			prof.FormatValue(e.Flat, unit), pct, prof.FormatValue(e.Cum, unit), e.Name)
	}
	return nil
}

func runDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	n := fs.Int("n", 20, "entries to print")
	typ := fs.String("type", "", "sample type (default: last column)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("want OLD and NEW profile files, got %d args", fs.NArg())
	}
	a, err := loadProfile(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := loadProfile(fs.Arg(1))
	if err != nil {
		return err
	}
	ia, err := a.SampleIndex(*typ)
	if err != nil {
		return err
	}
	ib, err := b.SampleIndex(*typ)
	if err != nil {
		return err
	}
	unit := a.SampleTypes[ia].Unit
	fmt.Printf("%s %s: total %s -> %s (durations %s -> %s)\n",
		a.SampleTypes[ia].Type, unit,
		prof.FormatValue(prof.Total(a, ia), unit), prof.FormatValue(prof.Total(b, ib), unit),
		time.Duration(a.DurationNanos), time.Duration(b.DurationNanos))
	fmt.Printf("%12s %12s %12s  %s\n", "old", "new", "delta", "function")
	for _, e := range prof.Diff(a, b, ia, ib, *n) {
		sign := "+"
		if e.Delta < 0 {
			sign = ""
		}
		fmt.Printf("%12s %12s %s%11s  %s\n",
			prof.FormatValue(e.A, unit), prof.FormatValue(e.B, unit),
			sign, prof.FormatValue(e.Delta, unit), e.Name)
	}
	return nil
}

func runPhases(args []string) error {
	fs := flag.NewFlagSet("phases", flag.ExitOnError)
	n := fs.Int("n", 5, "hotspot functions per phase")
	typ := fs.String("type", "", "sample type (default: last column)")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("want exactly one profile file, got %d", fs.NArg())
	}
	p, err := loadProfile(fs.Arg(0))
	if err != nil {
		return err
	}
	idx, err := p.SampleIndex(*typ)
	if err != nil {
		return err
	}
	rep := prof.Phases(p, idx, *n)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	unit := rep.SampleType.Unit
	fmt.Printf("%s %s, total %s, unlabeled %.1f%% (runtime, submitters, capture overhead)\n",
		rep.SampleType.Type, unit, prof.FormatValue(rep.Total, unit), rep.UnlabeledPct)
	for _, c := range rep.Phases {
		fmt.Printf("\n%-9s %6.2f%% of samples, %s; %.1f%% in device model (internal/nvm, internal/pmem)\n",
			c.Phase, c.SharePct, prof.FormatValue(c.Value, unit), c.DeviceSharePct)
		for _, e := range c.Top {
			fmt.Printf("    %12s  %s\n", prof.FormatValue(e.Flat, unit), e.Name)
		}
	}
	return nil
}
