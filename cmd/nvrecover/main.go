// Command nvrecover demonstrates the failure-recovery protocol end to end:
// it loads a workload, runs committed epochs, power-fails the simulated
// NVMM device midway through an epoch's persists, recovers, verifies, and
// prints the Figure 11-style recovery-time breakdown.
//
// Usage:
//
//	nvrecover -workload smallbank -rows 20000 -crash-depth 2000
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"nvcaracal"
	"nvcaracal/internal/nvm"
	"nvcaracal/internal/workload/smallbank"
	"nvcaracal/internal/workload/ycsb"
)

func main() {
	var (
		workload   = flag.String("workload", "smallbank", "ycsb or smallbank")
		rows       = flag.Int("rows", 10_000, "YCSB rows / SmallBank customers")
		epochTxns  = flag.Int("epoch-txns", 1000, "transactions per epoch")
		epochs     = flag.Int("epochs", 3, "committed epochs before the crash")
		crashDepth = flag.Int64("crash-depth", 2000, "flushed lines into the doomed epoch before power failure")
		seed       = flag.Int64("seed", 1, "workload RNG seed")
	)
	flag.Parse()

	reg := nvcaracal.NewRegistry()
	// A minimal Obs attaches the always-on flight recorder, so the recovery
	// run leaves a per-stage progress log we can print afterwards.
	cfg := nvcaracal.Config{Registry: reg, Obs: nvcaracal.NewObs(nvcaracal.ObsConfig{})}
	rng := rand.New(rand.NewSource(*seed))
	var gen func() []*nvcaracal.Txn
	var loadBatches [][]*nvcaracal.Txn
	var verify func(db *nvcaracal.DB) error

	switch *workload {
	case "ycsb":
		w, err := ycsb.New(ycsb.DefaultConfig(*rows))
		if err != nil {
			fatal(err)
		}
		w.Register(reg)
		cfg.RowsPerCore = int64(*rows)*2 + 8192
		cfg.ValuesPerCore = int64(*rows)*3 + 8192
		loadBatches = w.LoadBatches(*epochTxns * 4)
		gen = func() []*nvcaracal.Txn { return w.GenBatch(rng, *epochTxns) }
		verify = func(db *nvcaracal.DB) error {
			if db.RowCount() != *rows {
				return fmt.Errorf("row count %d, want %d", db.RowCount(), *rows)
			}
			return nil
		}
	case "smallbank":
		w, err := smallbank.New(smallbank.DefaultConfig(*rows, max(1, *rows/100)))
		if err != nil {
			fatal(err)
		}
		w.Register(reg)
		cfg.RowSize = 128
		cfg.ValueSize = 64
		cfg.RowsPerCore = int64(*rows)*6 + 8192
		cfg.ValuesPerCore = 8192
		loadBatches = w.LoadBatches(*epochTxns * 4)
		gen = func() []*nvcaracal.Txn { return w.GenBatch(rng, *epochTxns) }
		verify = func(db *nvcaracal.DB) error {
			if db.RowCount() != 3**rows {
				return fmt.Errorf("row count %d, want %d", db.RowCount(), 3**rows)
			}
			return nil
		}
	default:
		fatal(fmt.Errorf("unknown workload %q", *workload))
	}

	db, dev, err := nvcaracal.OpenWithDevice(cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("loading %s...\n", *workload)
	for _, b := range loadBatches {
		if _, err := db.RunEpoch(b); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("running %d committed epochs of %d txns...\n", *epochs, *epochTxns)
	for e := 0; e < *epochs; e++ {
		if _, err := db.RunEpoch(gen()); err != nil {
			fatal(err)
		}
	}
	lastCommitted := db.Epoch()

	fmt.Printf("arming fail-point %d flushed lines into epoch %d, then pulling the plug...\n",
		*crashDepth, lastCommitted+1)
	crashed := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if r != nvm.ErrInjectedCrash {
					panic(r)
				}
				crashed = true
			}
		}()
		dev.SetFailAfter(*crashDepth)
		db.RunEpoch(gen())
	}()
	if !crashed {
		fmt.Println("epoch committed before the fail-point fired; nothing to replay — crashing anyway")
	}
	dev.Crash(nvm.CrashStrict, *seed)
	fmt.Println("power failed. recovering...")

	start := time.Now()
	db2, rep, err := nvcaracal.Recover(dev, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nrecovered to epoch %d in %v\n", db2.Epoch(), time.Since(start).Round(time.Microsecond))
	fmt.Printf("  checkpoint epoch:   %d\n", rep.CheckpointEpoch)
	if rep.ReplayedEpoch != 0 {
		fmt.Printf("  replayed epoch:     %d (%d txns)\n", rep.ReplayedEpoch, rep.TxnsReplayed)
	} else {
		fmt.Printf("  replayed epoch:     none (crash before the input log was durable)\n")
	}
	fmt.Printf("  rows scanned:       %d (repaired %d torn descriptors, reverted %d)\n",
		rep.RowsScanned, rep.RowsRepaired, rep.RowsReverted)
	fmt.Printf("  counters restored:  %d\n", rep.CountersRestored)
	fmt.Printf("  breakdown: load %v | scan+rebuild %v | revert %v | replay %v\n",
		rep.LoadTime.Round(time.Microsecond), rep.ScanTime.Round(time.Microsecond),
		rep.RevertTime.Round(time.Microsecond), rep.ReplayTime.Round(time.Microsecond))
	if stages := recoveryStages(cfg.Obs); len(stages) > 0 {
		fmt.Println("  flight log:")
		for _, s := range stages {
			fmt.Printf("    %s\n", s)
		}
	}

	if err := verify(db2); err != nil {
		fatal(fmt.Errorf("verification failed: %w", err))
	}
	fmt.Println("\nverification passed; database is consistent and running:")
	if _, err := db2.RunEpoch(gen()); err != nil {
		fatal(err)
	}
	fmt.Printf("post-recovery epoch %d committed.\n", db2.Epoch())
}

// recoveryStages pulls the recovery-stage events out of the flight recorder,
// oldest first, already rendered by the event's own describer.
func recoveryStages(o *nvcaracal.Obs) []string {
	var out []string
	for _, ev := range o.Flight().JSON(0).Events {
		if ev.Type == "recovery-stage" {
			out = append(out, ev.Detail)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nvrecover:", err)
	os.Exit(1)
}
