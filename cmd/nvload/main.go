// Command nvload loads one of the built-in workloads into an NVCaracal
// instance, drives it for a number of epochs, and prints throughput,
// engine metrics, and the memory breakdown — a generic driver for
// exploring configurations outside the fixed paper experiments.
//
// Usage:
//
//	nvload -workload ycsb -rows 50000 -contention high -epochs 10
//	nvload -workload smallbank -mode hybrid
//	nvload -workload tpcc -warehouses 4 -epoch-txns 2000
//	nvload -workload ycsb -submitters 8        # concurrent group-commit mode
//
// With -submitters N the measured phase is driven through the concurrent
// group-commit front-end: N client goroutines call Submit and the batch
// former closes epochs at -epoch-txns transactions or -submit-max-delay,
// instead of a single caller hand-assembling each epoch.
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"

	"nvcaracal"
	"nvcaracal/internal/obs"
	"nvcaracal/internal/prof"
	"nvcaracal/internal/workload/smallbank"
	"nvcaracal/internal/workload/tpcc"
	"nvcaracal/internal/workload/ycsb"
)

func main() {
	var (
		workload   = flag.String("workload", "ycsb", "ycsb, ycsb-smallrow, smallbank, or tpcc")
		rows       = flag.Int("rows", 20_000, "YCSB rows / SmallBank customers")
		warehouses = flag.Int("warehouses", 2, "TPC-C warehouses")
		contention = flag.String("contention", "low", "low, med (YCSB only), or high")
		mode       = flag.String("mode", "nvcaracal", "nvcaracal, no-logging, hybrid, all-nvmm, all-dram")
		epochTxns  = flag.Int("epoch-txns", 1000, "transactions per epoch")
		epochs     = flag.Int("epochs", 5, "measured epochs")
		asyncP     = flag.Bool("async-persist", false, "overlap the epoch-commit tail (checkpoint fence, epoch record) with the next epoch's work")
		pipeline   = flag.Bool("pipeline", false, "depth-1 epoch pipeline: overlap the entire checkpoint (staging, counters, fence, record) with the next epoch")
		cores      = flag.Int("cores", 0, "worker cores (0 = GOMAXPROCS)")
		seed       = flag.Int64("seed", 1, "workload RNG seed")
		submitters = flag.Int("submitters", 0, "concurrent submitter goroutines (0 = hand-batched epochs)")
		submitLag  = flag.Duration("submit-max-delay", 2*time.Millisecond, "batch former max-latency deadline (with -submitters)")
		readLat    = flag.Duration("nvmm-read-latency", 60*time.Nanosecond, "simulated NVMM read latency per line")
		writeLat   = flag.Duration("nvmm-write-latency", 250*time.Nanosecond, "simulated NVMM write latency per line")
		obsAddr    = flag.String("obs-addr", "", "serve /debug/nvcaracal/{stats,trace,attrib} on this address (e.g. :8077); also enables instrumentation")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace_event JSON of the run's epoch phases to this file")
		attribOut  = flag.String("attrib-out", "", "write the NVMM access-attribution JSON (per-cause counters, heatmap, write-amp) to this file at exit")
		serveAfter = flag.Duration("serve-after", 0, "keep the -obs-addr server up this long after the run (for scraping)")

		txnSample   = flag.Int("txn-sample", 0, "sample 1-in-N transactions for lifecycle tracing (0 = off; also enables instrumentation)")
		watch       = flag.Bool("watch", false, "arm the anomaly watchdog (durable lag, epoch outliers, committer/fence stalls)")
		watchStall  = flag.Duration("watch-stall-after", 0, "watchdog committer-stall threshold (0 = default 2s)")
		watchEvery  = flag.Duration("watch-interval", 0, "watchdog evaluation interval (0 = default 250ms)")
		incidentDir = flag.String("incident-dir", "", "directory for watchdog incident JSON files (with -watch)")
		commitStall = flag.Duration("inject-commit-stall", 0, "fault injection: stall every commit (persist-final) fence by this much during the measured phase")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the measured phase to this file (read with nvprof or go tool pprof)")
		profEpochs = flag.Int("prof-epochs", 0, "with -cpuprofile: bound the capture to the first N measured epochs instead of the whole phase")
		rtTrace    = flag.String("runtime-trace", "", "write a runtime execution trace of the measured phase to this file (view with go tool trace; phase regions included)")
		mutexFrac  = flag.Int("mutex-profile-frac", 0, "runtime mutex profile fraction (for /debug/nvcaracal/pprof/mutex)")
		blockRate  = flag.Int("block-profile-rate", 0, "runtime block profile rate in ns (for /debug/nvcaracal/pprof/block)")
	)
	flag.Parse()

	storageMode, err := parseMode(*mode)
	if err != nil {
		fatal(err)
	}

	cfg := nvcaracal.Config{
		Cores:            *cores,
		Mode:             storageMode,
		AsyncPersist:     *asyncP,
		Pipeline:         *pipeline,
		NVMMReadLatency:  *readLat,
		NVMMWriteLatency: *writeLat,
		Registry:         nvcaracal.NewRegistry(),
	}
	// The profiler rides along whenever anything wants profiles: the debug
	// server (pprof endpoints), explicit capture flags, or the watchdog
	// (incident profile attachments).
	var pr *nvcaracal.Profiler
	if *obsAddr != "" || *cpuProfile != "" || *rtTrace != "" || *watch {
		pr = nvcaracal.NewProfiler(nvcaracal.ProfConfig{
			MutexFraction:    *mutexFrac,
			BlockProfileRate: *blockRate,
		})
		cfg.Prof = pr
	}
	if *obsAddr != "" || *traceOut != "" || *attribOut != "" || *txnSample > 0 || *watch {
		ocfg := nvcaracal.ObsConfig{
			Hists:  true,
			Trace:  true,
			Device: true,
			Attrib: *obsAddr != "" || *attribOut != "" || *watch,
			Cores:  *cores,
		}
		if *txnSample > 0 {
			ocfg.TxnTrace = true
			ocfg.TxnSampleEvery = *txnSample
		}
		if *watch {
			ocfg.Watch = &nvcaracal.WatchConfig{
				IncidentDir:    *incidentDir,
				StallAfter:     *watchStall,
				Interval:       *watchEvery,
				CaptureProfile: pr.CaptureCPUBytes,
			}
		}
		cfg.Obs = nvcaracal.NewObs(ocfg)
	}
	if storageMode == nvcaracal.ModeAllDRAM {
		cfg.NVMMReadLatency, cfg.NVMMWriteLatency = 0, 0
	}

	rng := rand.New(rand.NewSource(*seed))
	var gen func(db *nvcaracal.DB) []*nvcaracal.Txn
	var loadBatches [][]*nvcaracal.Txn

	switch *workload {
	case "ycsb", "ycsb-smallrow":
		wcfg := ycsb.DefaultConfig(*rows)
		if *workload == "ycsb-smallrow" {
			wcfg = ycsb.SmallRowConfig(*rows)
		}
		switch *contention {
		case "low":
			wcfg.HotOps = 0
		case "med":
			wcfg.HotOps = 4
		case "high":
			wcfg.HotOps = 7
		default:
			fatal(fmt.Errorf("unknown contention %q", *contention))
		}
		w, err := ycsb.New(wcfg)
		if err != nil {
			fatal(err)
		}
		w.Register(cfg.Registry)
		cfg.RowsPerCore = int64(*rows)*2 + 8192
		cfg.ValuesPerCore = int64(*rows)*3 + 8192
		loadBatches = w.LoadBatches(*epochTxns * 4)
		gen = func(*nvcaracal.DB) []*nvcaracal.Txn { return w.GenBatch(rng, *epochTxns) }
	case "smallbank":
		hot := *rows / 18
		if *contention == "high" {
			hot = max(1, *rows/1000)
		}
		w, err := smallbank.New(smallbank.DefaultConfig(*rows, hot))
		if err != nil {
			fatal(err)
		}
		w.Register(cfg.Registry)
		cfg.RowSize = 128
		cfg.ValueSize = 64
		cfg.RowsPerCore = int64(*rows)*6 + 8192
		cfg.ValuesPerCore = 8192
		loadBatches = w.LoadBatches(*epochTxns * 4)
		gen = func(*nvcaracal.DB) []*nvcaracal.Txn { return w.GenBatch(rng, *epochTxns) }
	case "tpcc":
		wh := *warehouses
		if *contention == "high" {
			wh = 1
		}
		wcfg := tpcc.DefaultConfig(wh)
		w, err := tpcc.New(wcfg)
		if err != nil {
			fatal(err)
		}
		w.Register(cfg.Registry)
		cfg.Counters = wcfg.RequiredCounters()
		cfg.RevertOnRecovery = true
		base := wcfg.Items + wh*(1+wcfg.Items) + wh*wcfg.Districts*(2+2*wcfg.CustomersPerDistrict)
		cfg.RowsPerCore = int64(base) + int64(*epochs+2)*int64(*epochTxns)*8 + 8192
		cfg.ValuesPerCore = 8192
		loadBatches = w.LoadBatches(*epochTxns * 4)
		gen = func(db *nvcaracal.DB) []*nvcaracal.Txn { return w.GenBatch(rng, db, *epochTxns) }
	default:
		fatal(fmt.Errorf("unknown workload %q", *workload))
	}

	db, err := nvcaracal.Open(cfg)
	if err != nil {
		fatal(err)
	}
	if *obsAddr != "" {
		h := nvcaracal.NewObsHandler(cfg.Obs)
		h.AddSource("engine", func() any { return db.Metrics() })
		h.AddSource("memory", func() any { return db.Memory() })
		h.AddSource("device", func() any { return db.Device().Stats() })
		h.PublishExpvar("nvcaracal")
		mux := http.NewServeMux()
		mux.Handle("/debug/nvcaracal/", h)
		// More specific pattern: pprof endpoints win over the obs prefix.
		mux.Handle(prof.PprofPath, nvcaracal.NewProfHandler(pr))
		mux.Handle("/debug/vars", expvar.Handler())
		go func() {
			if err := http.ListenAndServe(*obsAddr, mux); err != nil {
				fatal(fmt.Errorf("obs server: %w", err))
			}
		}()
		fmt.Printf("obs: serving http://%s%s and %s\n", *obsAddr, obs.StatsPath, prof.PprofPath)
	}
	fmt.Printf("loading %s (%d batches)...\n", *workload, len(loadBatches))
	loadStart := time.Now()
	for _, b := range loadBatches {
		if _, err := db.RunEpoch(b); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("loaded %d rows in %v\n", db.RowCount(), time.Since(loadStart).Round(time.Millisecond))

	// Fault injection and the watchdog arm after the load phase so they see
	// only the measured epochs.
	if *commitStall > 0 {
		db.Device().SetCommitStall(*commitStall)
		fmt.Printf("inject: stalling every commit fence by %v\n", *commitStall)
	}
	var wd *nvcaracal.Watchdog
	if *watch {
		wd = cfg.Obs.StartWatch(nvcaracal.WatchTargets{
			Epoch:        db.Epoch,
			DurableEpoch: db.DurableEpoch,
		})
		fmt.Printf("watch: armed (incidents -> %q)\n", *incidentDir)
	}

	// Profile captures bracket the measured phase only: the load phase and
	// reporting tail would otherwise dominate short runs.
	var profWG sync.WaitGroup
	var profFiles []*os.File
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if *profEpochs > 0 {
			// Windowed: a background capture bounded by the committed-epoch
			// gauge, joined after the run.
			profWG.Add(1)
			go func() {
				defer profWG.Done()
				win, err := pr.CaptureCPUEpochs(f, *profEpochs, 10*time.Minute)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "nvload: cpu profile:", err)
					return
				}
				fmt.Printf("prof: wrote %s (epochs %d..%d, %v)\n",
					*cpuProfile, win.StartEpoch, win.EndEpoch, win.Elapsed.Round(time.Millisecond))
			}()
		} else {
			if err := pr.StartCPU(f); err != nil {
				fatal(fmt.Errorf("cpu profile: %w", err))
			}
			profFiles = append(profFiles, f)
		}
	}
	var traceFile *os.File
	if *rtTrace != "" {
		f, err := os.Create(*rtTrace)
		if err != nil {
			fatal(err)
		}
		if err := pr.StartTrace(f); err != nil {
			fatal(fmt.Errorf("runtime trace: %w", err))
		}
		traceFile = f
	}

	var committed, aborted int
	var total time.Duration
	if *submitters > 0 {
		committed, aborted, total = runSubmitters(db, gen, *submitters, *epochs, *epochTxns, *submitLag)
	} else {
		for e := 0; e < *epochs; e++ {
			batch := gen(db)
			start := time.Now()
			res, err := db.RunEpoch(batch)
			if err != nil {
				fatal(err)
			}
			d := time.Since(start)
			total += d
			committed += res.Committed
			aborted += res.Aborted
			fmt.Printf("epoch %d: %d committed, %d aborted, %v (log %v, init %v, exec %v, sync %v)\n",
				res.Epoch, res.Committed, res.Aborted, d.Round(time.Microsecond),
				res.LogTime.Round(time.Microsecond), res.InitTime.Round(time.Microsecond),
				res.ExecTime.Round(time.Microsecond), res.SyncTime.Round(time.Microsecond))
		}
	}

	// With -async-persist the last epoch's commit tail may still be in
	// flight; drain it so the reported device stats are final (no-op when
	// synchronous).
	db.WaitDurable()
	if len(profFiles) > 0 {
		pr.StopCPU()
		for _, f := range profFiles {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("prof: wrote %s\n", *cpuProfile)
	}
	profWG.Wait()
	if traceFile != nil {
		pr.StopTrace()
		if err := traceFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("prof: wrote %s\n", *rtTrace)
	}
	if wd != nil {
		// One last synchronous evaluation so short runs still get their
		// verdict, then stop the background loop.
		wd.Tick(time.Now())
		wd.Stop()
	}

	fmt.Printf("\nthroughput: %.0f txns/s (%d committed, %d aborted in %v)\n",
		float64(committed+aborted)/total.Seconds(), committed, aborted, total.Round(time.Millisecond))

	m := db.Metrics()
	fmt.Printf("versions: %d transient (DRAM), %d persistent (NVMM) — %.1f%% absorbed by DRAM\n",
		m.TransientVersions, m.PersistentVersions, 100*m.TransientShare())
	fmt.Printf("cache: %d hits, %d misses, %d entries; GC: %d minor, %d major\n",
		m.CacheHits, m.CacheMisses, m.CacheEntries, m.MinorGCs, m.MajorGCs)

	mem := db.Memory()
	fmt.Printf("memory: DRAM %.1f MiB (index %.1f, transient %.1f, cache %.1f) | NVMM %.1f MiB (rows %.1f, values %.1f, log %.1f)\n",
		mib(mem.DRAMTotal()), mib(mem.IndexBytes), mib(mem.TransientPeak), mib(mem.CacheBytes),
		mib(mem.NVMMTotal()), mib(mem.RowBytes), mib(mem.ValueBytes), mib(mem.LogBytes))

	st := db.Device().Stats()
	fmt.Printf("device: %s\n", st)
	if st.Fences > 0 {
		fmt.Printf("device: %d lines committed over %d fences (%.0f lines/fence amortization)\n",
			st.LinesFenced, st.Fences, float64(st.LinesFenced)/float64(st.Fences))
	}

	if o := cfg.Obs; o != nil {
		if d := o.Device(); d != nil {
			fmt.Printf("obs: fence p99 %v, fence stall total %v\n",
				time.Duration(d.Fence.Snapshot().Percentile(99)),
				time.Duration(d.FenceStallNanos()))
		}
		ep := o.EpochSnapshot()
		fmt.Printf("obs: epoch p50 %v p99 %v over %d epochs\n",
			time.Duration(ep.Percentile(50)), time.Duration(ep.Percentile(99)), ep.Count)
		if tt := o.TxnTrace(); tt != nil {
			b := obs.Breakdown(tt.Spans())
			fmt.Printf("txns: %d spans retained (%d sampled 1-in-%d, %d published)\n",
				b.Spans, tt.SampledCount(), tt.SampleEvery(), tt.PublishedCount())
			for _, p := range append(b.Phases, b.Total) {
				fmt.Printf("txns: %-11s mean %-12v p50 %-12v p99 %-12v max %v\n",
					p.Phase, time.Duration(p.MeanNS).Round(time.Microsecond),
					time.Duration(p.P50NS).Round(time.Microsecond),
					time.Duration(p.P99NS).Round(time.Microsecond),
					time.Duration(p.MaxNS).Round(time.Microsecond))
			}
		}
		if *traceOut != "" {
			if err := writeTrace(o, *traceOut); err != nil {
				fatal(err)
			}
			fmt.Printf("obs: wrote trace to %s (load in https://ui.perfetto.dev)\n", *traceOut)
		}
		if a := o.Attrib(); a != nil {
			j := a.JSON()
			cum := j.WriteAmp.Cumulative
			fmt.Printf("attrib: %d line write-backs (%d from row traffic), write-amp %.2fx, persist-all ratio %.2fx\n",
				cum.TotalLines, cum.RowLines, cum.WriteAmp, cum.PersistAllRatio)
			if *attribOut != "" {
				if err := writeAttrib(j, *attribOut); err != nil {
					fatal(err)
				}
				fmt.Printf("attrib: wrote %s\n", *attribOut)
			}
		}
	}
	if wd != nil {
		incs := wd.Incidents()
		fmt.Printf("watch: %d incident(s)\n", len(incs))
		for _, inc := range incs {
			loc := inc.File
			if loc == "" {
				loc = "(not written)"
			}
			fmt.Printf("watch: [%s] %s — %s\n", inc.Reason, inc.Detail, loc)
		}
	}
	if *obsAddr != "" && *serveAfter > 0 {
		fmt.Printf("obs: serving for another %v...\n", *serveAfter)
		time.Sleep(*serveAfter)
	}
}

// writeTrace exports the retained epoch-phase spans — and, when txn tracing
// is on, the sampled transaction lifecycles — as Chrome trace JSON.
func writeTrace(o *nvcaracal.Obs, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if tt := o.TxnTrace(); tt != nil {
		werr = obs.WriteChromeTraceWithTxns(f, o.Tracer().Spans(0), tt.Spans())
	} else {
		werr = obs.WriteChromeTrace(f, o.Tracer().Spans(0))
	}
	if werr != nil {
		f.Close()
		return werr
	}
	return f.Close()
}

// writeAttrib exports the attribution payload as indented JSON.
func writeAttrib(j *obs.AttribJSON, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(j); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runSubmitters drives the measured phase through the group-commit
// front-end: the workload's epochs are pre-generated (generation is the
// client side), split round-robin across n submitter goroutines, and
// submitted concurrently. Returns commit/abort counts and the measured
// wall-clock.
func runSubmitters(db *nvcaracal.DB, gen func(*nvcaracal.DB) []*nvcaracal.Txn,
	n, epochs, epochTxns int, maxDelay time.Duration) (committed, aborted int, total time.Duration) {
	var txns []*nvcaracal.Txn
	for e := 0; e < epochs; e++ {
		txns = append(txns, gen(db)...)
	}
	fmt.Printf("submitting %d txns from %d goroutines (batch cap %d, max delay %v)\n",
		len(txns), n, epochTxns, maxDelay)

	epochBase := db.Epoch()
	s := nvcaracal.NewSubmitter(db, nvcaracal.SubmitterConfig{
		MaxBatch: epochTxns,
		MaxDelay: maxDelay,
	})
	futs := make([]*nvcaracal.Future, len(txns))
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(txns); i += n {
				f, err := s.Submit(txns[i])
				if err != nil {
					fatal(err)
				}
				futs[i] = f
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		fatal(err)
	}
	total = time.Since(start)

	var failed int
	for _, f := range futs {
		switch r := f.Wait(); {
		case r.Err != nil:
			failed++
		case r.Committed:
			committed++
		default:
			aborted++
		}
	}
	if failed > 0 {
		fatal(fmt.Errorf("%d submissions failed", failed))
	}
	used := db.Epoch() - epochBase
	fmt.Printf("group commit: %d epochs used (%.1f txns/epoch), mean epoch %v\n",
		used, float64(len(txns))/float64(max(1, int(used))),
		(total / time.Duration(max(1, int(used)))).Round(time.Microsecond))
	return committed, aborted, total
}

func parseMode(s string) (nvcaracal.StorageMode, error) {
	switch s {
	case "nvcaracal":
		return nvcaracal.ModeNVCaracal, nil
	case "no-logging":
		return nvcaracal.ModeNoLogging, nil
	case "hybrid":
		return nvcaracal.ModeHybrid, nil
	case "all-nvmm":
		return nvcaracal.ModeAllNVMM, nil
	case "all-dram":
		return nvcaracal.ModeAllDRAM, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

func mib(b int64) float64 { return float64(b) / (1 << 20) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nvload:", err)
	os.Exit(1)
}
