// Command nvtorture explores the crash-point space of a seeded workload
// and checks that recovery restores a consistent state at every point:
// run crash-free to capture per-epoch oracle digests, then power-fail the
// simulated NVMM device after each flushed line (exhaustively for small
// workloads, stratified toward persist-phase boundaries for large),
// crossed with strict/all/random partial-persistence modes and
// crash-during-recovery double faults.
//
// Exit codes: 0 no violations, 1 violations found, 2 usage or setup error.
// On violations the first one is minimized to a JSON reproducer that
// `nvtorture -repro file.json` replays.
//
// Usage:
//
//	nvtorture -budget 30s -report report.json
//	nvtorture -workload tpcc -rows 2 -max-points 2000
//	nvtorture -repro nvtorture-repro.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nvcaracal/internal/core"
	"nvcaracal/internal/crashcheck"
)

func main() {
	var (
		// Exploration scope.
		budget    = flag.Duration("budget", 0, "wall-clock budget for exploration (0 = unbounded)")
		maxPoints = flag.Int("max-points", 0, "max crash points planned (0 = exhaustive cross product)")
		workers   = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		modes     = flag.String("modes", "", "comma-separated crash modes: strict,all,random (empty = all three)")
		randSeeds = flag.Int("random-seeds", 0, "seeds per CrashRandom point (0 = default 1)")
		doubles   = flag.Bool("double-faults", true, "add crash-during-recovery variants")
		dblEvery  = flag.Int("double-every", 0, "double-fault every Nth point (0 = default 8)")

		// Workload spec. -spec loads a JSON file; the individual flags
		// override DefaultSpec when no file is given.
		specPath  = flag.String("spec", "", "JSON workload spec file (overrides the spec flags)")
		workload  = flag.String("workload", "kv", "kv, ycsb, smallbank, or tpcc")
		aria      = flag.Bool("aria", false, "use the Aria batch path (kv only)")
		cores     = flag.Int("cores", 1, "engine cores (1 keeps crash points exactly replayable)")
		seed      = flag.Int64("seed", 1, "workload RNG seed")
		rows      = flag.Int("rows", 0, "dataset size (0 = workload default)")
		warm      = flag.Int("warm-epochs", -1, "committed epochs before the probe epoch (-1 = default)")
		epochTxns = flag.Int("epoch-txns", 0, "transactions in the probe epoch (0 = default)")
		valBytes  = flag.Int("value-bytes", -1, "pooled value size for kv (-1 = default)")
		minorGC   = flag.Bool("minor-gc", true, "enable minor GC")
		chaos     = flag.Int("chaos-denom", -1, "chaos cache-eviction denominator, 0 disables (-1 = default)")
		pIndex    = flag.Bool("persist-index", false, "persist the index via the index journal")
		asyncP    = flag.Bool("async-persist", false, "run the epoch-commit tail on a background goroutine")
		pipeline  = flag.Bool("pipeline", false, "depth-1 epoch pipeline: sweep a two-epoch overlapped probe window")

		// Outputs and modes of operation.
		reportPath = flag.String("report", "", "write the JSON exploration report here")
		reproPath  = flag.String("repro", "", "replay a JSON reproducer instead of exploring")
		reproOut   = flag.String("repro-out", "nvtorture-repro.json", "where to write the minimized reproducer on violations")
		minBudget  = flag.Duration("minimize-budget", 60*time.Second, "wall-clock budget for minimizing the first violation")
		breakOrder = flag.Bool("break-persist-order", false, "deliberately break SID-before-pointer persist ordering (checker self-test)")
		quiet      = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	if *breakOrder {
		core.SetPersistOrderBroken(true)
	}

	if *reproPath != "" {
		os.Exit(replay(*reproPath, *quiet))
	}

	spec := crashcheck.DefaultSpec()
	if *specPath != "" {
		var err error
		if spec, err = crashcheck.LoadSpec(*specPath); err != nil {
			fatal(err)
		}
	} else {
		spec.Workload = *workload
		spec.Aria = *aria
		spec.Cores = *cores
		spec.Seed = *seed
		spec.MinorGC = *minorGC
		spec.PersistIndex = *pIndex
		spec.AsyncPersist = *asyncP
		spec.Pipeline = *pipeline
		if *rows > 0 {
			spec.Rows = *rows
		} else {
			spec.Rows = defaultRows(*workload)
		}
		if *warm >= 0 {
			spec.WarmEpochs = *warm
		}
		if *epochTxns > 0 {
			spec.TxnsPerEpoch = *epochTxns
		}
		if *valBytes >= 0 {
			spec.ValueBytes = *valBytes
		}
		if *chaos >= 0 {
			spec.ChaosDenom = *chaos
		}
	}
	if err := spec.Validate(); err != nil {
		fatal(err)
	}

	cfg := crashcheck.Config{
		Budget:       *budget,
		MaxPoints:    *maxPoints,
		Workers:      *workers,
		RandomSeeds:  *randSeeds,
		DoubleFaults: *doubles,
		DoubleEvery:  *dblEvery,
	}
	if *modes != "" {
		cfg.Modes = strings.Split(*modes, ",")
	}
	if !*quiet {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	rep, err := crashcheck.Run(spec, cfg)
	if err != nil {
		fatal(err)
	}
	if *reportPath != "" {
		if err := writeReport(*reportPath, rep); err != nil {
			fatal(err)
		}
	}

	kind := "sampled"
	if rep.Exhaustive {
		kind = "exhaustive"
	}
	fmt.Printf("nvtorture: %s/%d-core: %d/%d points (%s over %d flushes, %d fences), %d violations, %dms\n",
		spec.Workload, spec.Cores, rep.PointsExplored, rep.PointsPlanned,
		kind, rep.FlushPoints, rep.FenceCount, len(rep.Violations), rep.ElapsedMS)

	if len(rep.Violations) == 0 {
		return
	}
	for i, v := range rep.Violations {
		if i == 8 {
			fmt.Printf("  ... and %d more\n", len(rep.Violations)-8)
			break
		}
		fmt.Printf("  %s\n", v)
	}
	fmt.Fprintf(os.Stderr, "minimizing first violation (budget %s)...\n", *minBudget)
	repro := crashcheck.Minimize(spec, rep.Violations[0], cfg, *minBudget)
	repro.BrokenPersistOrder = *breakOrder
	if err := repro.WriteFile(*reproOut); err != nil {
		fatal(err)
	}
	fmt.Printf("reproducer written to %s (spec rows=%d warm=%d txns=%d): %s at %s\n",
		*reproOut, repro.Spec.Rows, repro.Spec.WarmEpochs, repro.Spec.TxnsPerEpoch,
		repro.Kind, repro.Point)
	os.Exit(1)
}

// replay re-executes a reproducer. Exit 1 if the violation still
// reproduces (the bug is present), 0 if the build no longer exhibits it.
func replay(path string, quiet bool) int {
	r, err := crashcheck.LoadRepro(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvtorture:", err)
		return 2
	}
	if r.BrokenPersistOrder {
		core.SetPersistOrderBroken(true)
	}
	v, err := crashcheck.Replay(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvtorture:", err)
		return 2
	}
	if v == nil {
		fmt.Printf("nvtorture: %s: not reproduced (recorded %s at %s)\n", path, r.Kind, r.Point)
		return 0
	}
	fmt.Printf("nvtorture: %s: reproduced: %s\n", path, v)
	if !quiet && v.FlightTail != "" {
		fmt.Printf("flight recorder (crash-recover-check cycle):\n%s", v.FlightTail)
	}
	return 1
}

// defaultRows picks a dataset size that keeps the default exploration fast
// for each workload's natural unit (kv/ycsb rows, smallbank customers,
// tpcc warehouses).
func defaultRows(workload string) int {
	switch workload {
	case "tpcc":
		return 1
	case "smallbank":
		return 24
	case "ycsb":
		return 32
	default:
		return crashcheck.DefaultSpec().Rows
	}
}

func writeReport(path string, rep *crashcheck.Report) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nvtorture:", err)
	os.Exit(2)
}
