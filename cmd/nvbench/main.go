// Command nvbench regenerates the tables and figures of the paper's
// evaluation (§6) on the simulated NVMM substrate.
//
// Usage:
//
//	nvbench -exp fig5                # one experiment at quick scale
//	nvbench -exp all -scale paper    # everything, closer to paper scale
//	nvbench -list                    # enumerate experiments
//
// Each experiment prints one row per data point with the same labels the
// paper's figure uses, followed by the headline ratios (e.g. NVCaracal vs
// Zen per contention level). See EXPERIMENTS.md for paper-vs-measured
// comparisons.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"nvcaracal/internal/bench"
	"nvcaracal/internal/bench/regress"
	"nvcaracal/internal/nvm"
)

// flagWasSet reports whether a flag was explicitly passed (distinguishing
// -regress-history= meaning "disable" from the flag's absence).
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment to run ("+strings.Join(bench.Names(), ", ")+", or all)")
		scaleName = flag.String("scale", "quick", "scale: quick or paper")
		list      = flag.Bool("list", false, "list experiments and exit")
		seed      = flag.Int64("seed", 42, "workload RNG seed")
		cores     = flag.Int("cores", 0, "worker cores (0 = GOMAXPROCS)")
		epochTxns = flag.Int("epoch-txns", 0, "override transactions per epoch")
		epochs    = flag.Int("epochs", 0, "override measured epochs")
		readLat   = flag.Duration("read-lat", 0, "override NVMM read latency per line")
		writeLat  = flag.Duration("write-lat", 0, "override NVMM write latency per line")
		csvPath   = flag.String("csv", "", "also write results as CSV to this file")
		devBench  = flag.String("device-bench", "", "run the raw device contention benchmark and write JSON to this file (skips experiments)")
		devOps    = flag.Int("device-ops", 200000, "device-bench iterations per core")
		obsBench  = flag.String("obs-bench", "", "run the observed phase-breakdown cells and write BENCH_obs.json-style output to this file (skips experiments)")
		attrBench = flag.String("attrib-bench", "", "run the NVMM access-attribution cells (dual-version vs persist-every-write) and write BENCH_attrib.json-style output to this file (skips experiments)")
		pipeBench = flag.String("pipeline-bench", "", "run the serial/async/pipeline epoch-commit sweep and write BENCH_pipeline.json-style output to this file (skips experiments)")

		checkRegress   = flag.Bool("check-regress", false, "re-run the committed bench baselines and compare with noise-aware tolerance bands (skips experiments; exit 1 on a gating regression)")
		regressRepeats = flag.Int("regress-repeats", 3, "repeats per report for -check-regress; the per-metric median is compared")
		regressDir     = flag.String("regress-dir", ".", "directory holding the committed BENCH_*.json baselines")
		regressHistory = flag.String("regress-history", "", "append the comparison to this JSONL trend file (default <regress-dir>/BENCH_history.jsonl; empty string after explicit -regress-history= disables)")
		regressReports = flag.String("regress-reports", "obs,attrib", "comma-separated baselines to check: obs, attrib, pipeline, device")
		regressStall   = flag.Duration("inject-commit-stall", 0, "fault injection for -check-regress: stall every commit fence of the observed runs by this much (proves the gate trips)")
		regressVerbose = flag.Bool("regress-verbose", false, "print every compared metric, not just non-ok ones")
	)
	flag.Parse()

	if *checkRegress {
		hist := *regressHistory
		if hist == "" && !flagWasSet("regress-history") {
			hist = *regressDir + "/BENCH_history.jsonl"
		}
		failed, err := runCheckRegress(*scaleName, *seed, *regressRepeats, *regressDir,
			hist, *regressReports, *regressStall, *regressVerbose)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nvbench: check-regress: %v\n", err)
			os.Exit(1)
		}
		if failed {
			os.Exit(1)
		}
		return
	}

	if *obsBench != "" {
		if err := runObsBench(*obsBench, *scaleName, *seed, *cores); err != nil {
			fmt.Fprintf(os.Stderr, "nvbench: obs-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *attrBench != "" {
		if err := runAttribBench(*attrBench, *scaleName, *seed, *cores); err != nil {
			fmt.Fprintf(os.Stderr, "nvbench: attrib-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *pipeBench != "" {
		if err := runPipelineBench(*pipeBench, *scaleName, *seed, *epochTxns, *epochs); err != nil {
			fmt.Fprintf(os.Stderr, "nvbench: pipeline-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *devBench != "" {
		if err := runDeviceBench(*devBench, *devOps); err != nil {
			fmt.Fprintf(os.Stderr, "nvbench: device-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.Name, e.Title)
		}
		return
	}

	var scale bench.Scale
	switch *scaleName {
	case "quick":
		scale = bench.QuickScale()
	case "paper":
		scale = bench.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "nvbench: unknown scale %q (quick or paper)\n", *scaleName)
		os.Exit(2)
	}
	scale.Cores = *cores
	if *epochTxns > 0 {
		scale.EpochTxns = *epochTxns
	}
	if *epochs > 0 {
		scale.Epochs = *epochs
	}
	if *readLat > 0 {
		scale.ReadLatency = *readLat
	}
	if *writeLat > 0 {
		scale.WriteLatency = *writeLat
	}

	opts := bench.Options{Scale: scale, Out: os.Stdout, Seed: *seed}
	fmt.Printf("nvbench: scale=%s cores=%d epoch=%d txns x %d epochs, NVMM latency r/w=%v/%v\n\n",
		scale.Name, runtime.GOMAXPROCS(0), scale.EpochTxns, scale.Epochs,
		scale.ReadLatency, scale.WriteLatency)

	var all []bench.Result
	run := func(e bench.Experiment) {
		fmt.Printf("=== %s: %s ===\n", e.Name, e.Title)
		start := time.Now()
		all = append(all, e.Run(opts)...)
		fmt.Printf("=== %s done in %v ===\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range bench.Experiments() {
			run(e)
		}
	} else {
		e, ok := bench.ByName(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "nvbench: unknown experiment %q; -list shows options\n", *exp)
			os.Exit(2)
		}
		run(e)
	}

	if *csvPath != "" {
		if err := writeCSV(*csvPath, all); err != nil {
			fmt.Fprintf(os.Stderr, "nvbench: csv: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d result rows to %s\n", len(all), *csvPath)
	}
}

// writeCSV flattens results to exp,label1,value1,...,value,unit rows.
func writeCSV(path string, rs []bench.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"exp", "labels", "value", "unit"}); err != nil {
		return err
	}
	for _, r := range rs {
		var labels []string
		for _, l := range r.Labels {
			labels = append(labels, l.Key+"="+l.Val)
		}
		rec := []string{r.Exp, strings.Join(labels, ";"), strconv.FormatFloat(r.Value, 'f', 3, 64), r.Unit}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return w.Error()
}

// deviceBenchReport is the schema of BENCH_device.json: the raw device-op
// throughput trajectory committed to the repo so device-layer changes show
// their perf effect in review. Wall-clock numbers are hardware-dependent;
// the committed file records the reference machine in `cpu`/`go`.
type deviceBenchReport struct {
	Benchmark string                  `json:"benchmark"`
	Go        string                  `json:"go"`
	CPU       int                     `json:"gomaxprocs"`
	OpsCore   int                     `json:"ops_per_core"`
	Results   []nvm.DeviceBenchResult `json:"results"`
}

// runObsBench runs the observed phase-breakdown cells and writes the
// BENCH_obs.json artifact: where epoch time goes (log/init/execute/persist
// plus GC shares) per workload and contention level.
func runPipelineBench(path, scaleName string, seed int64, epochTxns, epochs int) error {
	var scale bench.Scale
	switch scaleName {
	case "quick":
		scale = bench.QuickScale()
	case "paper":
		scale = bench.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q (quick or paper)", scaleName)
	}
	if epochTxns > 0 {
		scale.EpochTxns = epochTxns
	}
	if epochs > 0 {
		scale.Epochs = epochs
	}
	rep, err := bench.RunPipelineReport(bench.Options{Scale: scale, Out: os.Stdout, Seed: seed})
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d pipeline cells to %s\n", len(rep.Cells), path)
	return nil
}

func runObsBench(path, scaleName string, seed int64, cores int) error {
	var scale bench.Scale
	switch scaleName {
	case "quick":
		scale = bench.QuickScale()
	case "paper":
		scale = bench.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q (quick or paper)", scaleName)
	}
	scale.Cores = cores
	rep, err := bench.RunObsReport(bench.Options{Scale: scale, Out: os.Stdout, Seed: seed})
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d observed cells to %s\n", len(rep.Cells), path)
	return nil
}

// runAttribBench runs the NVMM access-attribution cells and writes the
// BENCH_attrib.json artifact: per-cause line write-back counters and
// write-amplification windows for dual-version vs persist-every-write, per
// workload and contention level.
func runAttribBench(path, scaleName string, seed int64, cores int) error {
	var scale bench.Scale
	switch scaleName {
	case "quick":
		scale = bench.QuickScale()
	case "paper":
		scale = bench.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q (quick or paper)", scaleName)
	}
	scale.Cores = cores
	rep, err := bench.RunAttribReport(bench.Options{Scale: scale, Out: os.Stdout, Seed: seed})
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d attributed cells (%d comparisons) to %s\n", len(rep.Cells), len(rep.Comparisons), path)
	return nil
}

// runCheckRegress re-runs the requested bench reports against the committed
// BENCH_*.json baselines in dir and compares with regress's per-class
// tolerance bands: shares and ratios (the paper's shape claims) gate,
// wall-clock metrics only trend. Each report runs `repeats` times and the
// per-metric median is compared, so single-run scheduler noise cannot trip
// the gate. The outcome is appended to the JSONL history file (when set),
// gating or not — the history is the trend record.
func runCheckRegress(scaleName string, seed int64, repeats int, dir, history, reports string,
	stall time.Duration, verbose bool) (failed bool, err error) {
	if repeats < 1 {
		repeats = 1
	}
	var scale bench.Scale
	switch scaleName {
	case "quick":
		scale = bench.QuickScale()
	case "paper":
		scale = bench.PaperScale()
	default:
		return false, fmt.Errorf("unknown scale %q (quick or paper)", scaleName)
	}

	entry := regress.HistoryEntry{
		Time:       time.Now().UTC().Format(time.RFC3339),
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      scale.Name,
		Repeats:    repeats,
	}
	if stall > 0 {
		fmt.Printf("check-regress: injecting %v commit-fence stall into observed runs\n", stall)
	}

	runReport := func(name string, base []regress.Metric, baseScale string,
		run func() ([]regress.Metric, error)) error {
		if baseScale != "" && baseScale != scale.Name {
			return fmt.Errorf("%s: baseline is scale %q, this run is %q — compare like with like", name, baseScale, scale.Name)
		}
		runs := make([][]regress.Metric, 0, repeats)
		for i := 0; i < repeats; i++ {
			fmt.Printf("check-regress: %s run %d/%d...\n", name, i+1, repeats)
			ms, err := run()
			if err != nil {
				return fmt.Errorf("%s run %d: %w", name, i+1, err)
			}
			runs = append(runs, ms)
		}
		med := regress.MedianOfRuns(runs)
		rep := regress.Compare(name, base, med, nil)
		rep.Format(os.Stdout, verbose)
		entry.Fold(rep)
		entry.Metrics = append(entry.Metrics, med...)
		if rep.Failed() {
			failed = true
		}
		return nil
	}

	for _, name := range strings.Split(reports, ",") {
		switch strings.TrimSpace(name) {
		case "obs":
			base, baseRep, err := regress.LoadObsBaseline(dir + "/BENCH_obs.json")
			if err != nil {
				return false, err
			}
			s := scale
			s.Cores = baseRep.GOMAXPROCS // pin engine cores to the baseline's
			if err := runReport("BENCH_obs.json", base, baseRep.Scale, func() ([]regress.Metric, error) {
				r, err := bench.RunObsReport(bench.Options{Scale: s, Seed: seed, CommitStall: stall})
				if err != nil {
					return nil, err
				}
				return regress.FromObsReport(r), nil
			}); err != nil {
				return false, err
			}
		case "attrib":
			base, baseRep, err := regress.LoadAttribBaseline(dir + "/BENCH_attrib.json")
			if err != nil {
				return false, err
			}
			s := scale
			s.Cores = baseRep.GOMAXPROCS
			if err := runReport("BENCH_attrib.json", base, baseRep.Scale, func() ([]regress.Metric, error) {
				r, err := bench.RunAttribReport(bench.Options{Scale: s, Seed: seed})
				if err != nil {
					return nil, err
				}
				return regress.FromAttribReport(r), nil
			}); err != nil {
				return false, err
			}
		case "pipeline":
			base, baseRep, err := regress.LoadPipelineBaseline(dir + "/BENCH_pipeline.json")
			if err != nil {
				return false, err
			}
			if err := runReport("BENCH_pipeline.json", base, baseRep.Scale, func() ([]regress.Metric, error) {
				r, err := bench.RunPipelineReport(bench.Options{Scale: scale, Seed: seed})
				if err != nil {
					return nil, err
				}
				return regress.FromPipelineReport(r), nil
			}); err != nil {
				return false, err
			}
		case "device":
			base, baseRep, err := regress.LoadDeviceBaseline(dir + "/BENCH_device.json")
			if err != nil {
				return false, err
			}
			if err := runReport("BENCH_device.json", base, "", func() ([]regress.Metric, error) {
				rep := regress.DeviceBenchReport{OpsCore: baseRep.OpsCore}
				for _, r := range baseRep.Results {
					rep.Results = append(rep.Results, nvm.RunDeviceBench(r.Cores, baseRep.OpsCore))
				}
				return regress.FromDeviceReport(rep), nil
			}); err != nil {
				return false, err
			}
		default:
			return false, fmt.Errorf("unknown regress report %q (obs, attrib, pipeline, device)", name)
		}
	}

	if history != "" {
		if err := regress.AppendHistory(history, entry); err != nil {
			return false, fmt.Errorf("history: %w", err)
		}
		fmt.Printf("check-regress: appended to %s\n", history)
	}
	if failed {
		fmt.Println("check-regress: FAIL (gating regression)")
	} else {
		fmt.Println("check-regress: ok")
	}
	return failed, nil
}

// runDeviceBench measures device-op throughput at 1/4/8 worker goroutines
// (the BenchmarkDeviceContention sweep) and writes the JSON artifact.
func runDeviceBench(path string, opsPerCore int) error {
	rep := deviceBenchReport{
		Benchmark: "device-contention",
		Go:        runtime.Version(),
		CPU:       runtime.GOMAXPROCS(0),
		OpsCore:   opsPerCore,
	}
	for _, cores := range []int{1, 4, 8} {
		r := nvm.RunDeviceBench(cores, opsPerCore)
		rep.Results = append(rep.Results, r)
		fmt.Printf("device-bench cores=%d: %.0f devops/s (%d ops in %.3fs)\n",
			r.Cores, r.OpsSec, r.Ops, r.Secs)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
