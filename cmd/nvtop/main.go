// Command nvtop reads a running engine's observability endpoint
// (/debug/nvcaracal/stats, served by nvload/nvbench under -obs-addr) and
// prints a latency report: per-phase and end-to-end epoch histograms,
// transaction execution latency, and device-level read/write/flush/fence
// latency with the fence-stall total.
//
// One-shot by default; with -interval it polls and reports the delta of
// each window (counts and histogram buckets are differenced, so percentiles
// describe just that window's activity):
//
//	nvtop -addr 127.0.0.1:8077
//	nvtop -addr 127.0.0.1:8077 -interval 2s -count 10
//
// When the engine serves the attribution endpoint (/debug/nvcaracal/attrib)
// the report ends with an attribution panel: NVMM line write-backs broken
// down by logical cause, the per-region spatial rollup, and the
// write-amplification summary (cumulative; not differenced in -interval
// mode).
//
// When the engine samples transaction lifecycles (nvload -txn-sample) the
// report adds a tail-latency breakdown panel: where sampled transactions
// spend their time across queue, epoch-wait, execute, epoch-tail, and
// commit-lag (from /debug/nvcaracal/txns).
//
// With -selfcheck it validates the endpoints instead: the stats payload must
// parse against the schema and carry non-zero epoch counts, the trace
// endpoint must serve loadable Chrome trace JSON with at least one span, and
// the attribution payload must parse with per-cause counters consistent with
// its write-amplification totals. It further checks the flight recorder
// (/flight must retain epoch-start/epoch-end/durable-publish events), the
// txn-lifecycle endpoint (/txns span counts must be consistent with the
// txn-exec histogram totals at the advertised sampling rate), and the
// Prometheus endpoint (/metrics must golden-parse as text exposition with
// the core families present). The selfcheck expects an engine running an
// asynchronous commit mode (nvload -pipeline or -async-persist): the
// committer's "commit" phase must be populated alongside the four epoch
// phases. The CI observability smoke runs exactly this against a pipelined
// nvload.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"nvcaracal/internal/obs"
	"nvcaracal/internal/prof"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8077", "host:port of the engine's -obs-addr")
		interval  = flag.Duration("interval", 0, "poll interval (0 = one-shot)")
		count     = flag.Int("count", 0, "number of interval reports (0 = until interrupted)")
		selfcheck = flag.Bool("selfcheck", false, "validate the stats and trace endpoints, then exit")
		timeout   = flag.Duration("timeout", 5*time.Second, "HTTP timeout per request")
	)
	flag.Parse()

	client := &http.Client{Timeout: *timeout}
	base := "http://" + *addr

	if *selfcheck {
		if err := runSelfcheck(client, base); err != nil {
			fatal(err)
		}
		fmt.Println("selfcheck ok")
		return
	}

	prev, err := fetchStats(client, base)
	if err != nil {
		fatal(err)
	}
	if *interval <= 0 {
		report(os.Stdout, prev, nil)
		reportTxns(os.Stdout, client, base)
		reportAttrib(os.Stdout, client, base)
		return
	}
	for i := 0; *count == 0 || i < *count; i++ {
		time.Sleep(*interval)
		cur, err := fetchStats(client, base)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("--- window %v ---\n", interval)
		report(os.Stdout, cur, &prev)
		reportTxns(os.Stdout, client, base)
		reportAttrib(os.Stdout, client, base)
		prev = cur
	}
}

func fetchStats(client *http.Client, base string) (obs.StatsPayload, error) {
	var p obs.StatsPayload
	resp, err := client.Get(base + obs.StatsPath)
	if err != nil {
		return p, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return p, fmt.Errorf("stats endpoint: HTTP %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		return p, fmt.Errorf("stats payload: %w", err)
	}
	return p, nil
}

// report prints one latency table. With prev != nil each histogram is
// differenced against the previous sample first.
func report(w io.Writer, cur obs.StatsPayload, prev *obs.StatsPayload) {
	diff := func(c, p obs.HistJSON) obs.HistSnapshot {
		s := c.Snapshot()
		if prev != nil {
			s = s.Sub(p.Snapshot())
		}
		return s
	}
	row := func(name string, c, p obs.HistJSON) {
		s := diff(c, p)
		if s.Count == 0 {
			fmt.Fprintf(w, "%-12s %10s\n", name, "-")
			return
		}
		fmt.Fprintf(w, "%-12s %10d  p50<%-10v p99<%-10v max %-10v mean %v\n",
			name, s.Count,
			time.Duration(s.Percentile(50)), time.Duration(s.Percentile(99)),
			time.Duration(s.Max), time.Duration(s.Mean()))
	}

	fmt.Fprintf(w, "uptime %.1fs\n", cur.UptimeSeconds)
	fmt.Fprintf(w, "%-12s %10s\n", "histogram", "count")
	row("epoch", cur.Epoch, prevOr(prev).Epoch)
	row("txn-exec", cur.TxnExec, prevOr(prev).TxnExec)
	names := make([]string, 0, len(cur.Phases))
	for name := range cur.Phases {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		row("  "+name, cur.Phases[name], prevOr(prev).Phases[name])
	}
	// Durable lag: epochs completed while the previous epoch's commit was
	// still in flight. All-zero (and omitted) unless an async or pipelined
	// commit mode ran; a lag beyond 1 should never appear with the depth-1
	// pipeline.
	if lag := diffLag(cur.DurableLag, prevOr(prev).DurableLag); lagTotal(lag) > 0 {
		fmt.Fprintf(w, "%-12s %10d ", "durable-lag", lagTotal(lag))
		for i, n := range lag {
			fmt.Fprintf(w, " lag%d=%d", i, n)
		}
		fmt.Fprintln(w)
	}
	if cur.Device != nil {
		d := cur.Device
		var pd obs.DeviceJSON
		if p := prevOr(prev).Device; p != nil {
			pd = *p
		}
		row("dev-read", d.Read, pd.Read)
		row("dev-write", d.Write, pd.Write)
		row("dev-flush", d.Flush, pd.Flush)
		row("dev-fence", d.Fence, pd.Fence)
		stall := d.FenceStallNanos - pd.FenceStallNanos
		fmt.Fprintf(w, "%-12s %10s  total %v\n", "fence-stall", "", time.Duration(stall))
	}
}

// fetchAttrib reads the attribution endpoint. A nil payload (served as JSON
// null when the engine runs without the attribution instrument) is not an
// error — callers skip the panel.
func fetchAttrib(client *http.Client, base string) (*obs.AttribJSON, error) {
	resp, err := client.Get(base + obs.AttribPath)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("attrib endpoint: HTTP %d", resp.StatusCode)
	}
	var aj *obs.AttribJSON
	if err := json.NewDecoder(resp.Body).Decode(&aj); err != nil {
		return nil, fmt.Errorf("attrib payload: %w", err)
	}
	return aj, nil
}

// reportAttrib prints the attribution panel: per-cause write-backs sorted by
// volume, the named-region spatial rollup, and the cumulative
// write-amplification line. Silently absent when the engine does not serve
// attribution.
func reportAttrib(w io.Writer, client *http.Client, base string) {
	aj, err := fetchAttrib(client, base)
	if err != nil || aj == nil {
		return
	}
	fmt.Fprintf(w, "\nattribution (NVMM traffic by cause)\n")
	fmt.Fprintf(w, "%-20s %12s %12s %12s %14s\n", "cause", "line-reads", "line-writes", "flushes", "bytes-written")
	names := make([]string, 0, len(aj.PerCause))
	for name := range aj.PerCause {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		ci, cj := aj.PerCause[names[i]], aj.PerCause[names[j]]
		if ci.Flushes != cj.Flushes {
			return ci.Flushes > cj.Flushes
		}
		return names[i] < names[j]
	})
	for _, name := range names {
		c := aj.PerCause[name]
		fmt.Fprintf(w, "%-20s %12d %12d %12d %14d\n",
			name, c.LineReads, c.LineWrites, c.Flushes, c.BytesWritten)
	}
	if regs := aj.Heatmap.Regions; len(regs) > 0 {
		var total int64
		for _, r := range regs {
			total += r.LineWrites
		}
		total += aj.Heatmap.UnmappedWrites
		fmt.Fprintf(w, "regions:")
		for _, r := range regs {
			fmt.Fprintf(w, " %s %.0f%%", r.Name, pct(r.LineWrites, total))
		}
		if aj.Heatmap.UnmappedWrites > 0 {
			fmt.Fprintf(w, " unmapped %.0f%%", pct(aj.Heatmap.UnmappedWrites, total))
		}
		fmt.Fprintln(w)
	}
	cum := aj.WriteAmp.Cumulative
	fmt.Fprintf(w, "write-amp %.2fx (row traffic %.2fx), persist-all ratio %.2fx — %d write-backs for %d committed bytes\n",
		cum.WriteAmp, cum.RowWriteAmp, cum.PersistAllRatio, cum.TotalLines, cum.CommittedBytes)
}

// fetchTxns reads the txn-lifecycle endpoint. An engine without txn tracing
// serves the zero payload (sample_every 0), which callers treat as absent.
func fetchTxns(client *http.Client, base string) (obs.TxnsJSON, error) {
	var tj obs.TxnsJSON
	resp, err := client.Get(base + obs.TxnsPath)
	if err != nil {
		return tj, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return tj, fmt.Errorf("txns endpoint: HTTP %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&tj); err != nil {
		return tj, fmt.Errorf("txns payload: %w", err)
	}
	return tj, nil
}

// fetchFlight reads the flight-recorder endpoint.
func fetchFlight(client *http.Client, base string) (obs.FlightJSON, error) {
	var fj obs.FlightJSON
	resp, err := client.Get(base + obs.FlightPath)
	if err != nil {
		return fj, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fj, fmt.Errorf("flight endpoint: HTTP %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&fj); err != nil {
		return fj, fmt.Errorf("flight payload: %w", err)
	}
	return fj, nil
}

// reportTxns prints the sampled-transaction tail-latency breakdown panel.
// Silently absent when the engine runs without txn tracing.
func reportTxns(w io.Writer, client *http.Client, base string) {
	tj, err := fetchTxns(client, base)
	if err != nil || tj.SampleEvery == 0 || tj.Breakdown.Spans == 0 {
		return
	}
	fmt.Fprintf(w, "\ntxn lifecycle (1 in %d sampled; %d spans retained)\n",
		tj.SampleEvery, tj.Breakdown.Spans)
	fmt.Fprintf(w, "%-12s %12s %12s %12s %12s\n", "phase", "mean", "p50", "p99", "max")
	for _, p := range append(tj.Breakdown.Phases, tj.Breakdown.Total) {
		fmt.Fprintf(w, "%-12s %12v %12v %12v %12v\n", p.Phase,
			time.Duration(p.MeanNS).Round(time.Microsecond),
			time.Duration(p.P50NS).Round(time.Microsecond),
			time.Duration(p.P99NS).Round(time.Microsecond),
			time.Duration(p.MaxNS).Round(time.Microsecond))
	}
}

// diffLag subtracts the previous durable-lag sample bucket-wise (counters
// are cumulative) for interval mode; prev is empty in one-shot mode.
func diffLag(cur, prev []uint64) []uint64 {
	out := make([]uint64, len(cur))
	for i, n := range cur {
		if i < len(prev) && prev[i] <= n {
			n -= prev[i]
		}
		out[i] = n
	}
	return out
}

func lagTotal(lag []uint64) uint64 {
	var t uint64
	for _, n := range lag {
		t += n
	}
	return t
}

func pct(part, total int64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}

// prevOr returns the previous payload or a zero payload for one-shot mode.
func prevOr(p *obs.StatsPayload) obs.StatsPayload {
	if p == nil {
		return obs.StatsPayload{}
	}
	return *p
}

// runSelfcheck validates both endpoints the way the CI smoke needs.
func runSelfcheck(client *http.Client, base string) error {
	p, err := fetchStats(client, base)
	if err != nil {
		return err
	}
	if p.Epoch.Count == 0 {
		return fmt.Errorf("stats: epoch histogram is empty")
	}
	for _, name := range []string{"log", "init", "execute", "persist", "commit"} {
		if p.Phases[name].Count == 0 {
			return fmt.Errorf("stats: phase %q histogram is empty", name)
		}
	}
	if p.Epoch.P50NS <= 0 || p.Epoch.P99NS < p.Epoch.P50NS {
		return fmt.Errorf("stats: implausible epoch percentiles: %+v", p.Epoch)
	}

	resp, err := client.Get(base + obs.TracePath)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("trace endpoint: HTTP %d", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return fmt.Errorf("trace payload: %w", err)
	}
	spans := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			spans[ev.Name]++
		}
	}
	for _, name := range []string{"log", "init", "execute", "persist", "commit"} {
		if spans[name] == 0 {
			return fmt.Errorf("trace: no %q spans (got %v)", name, spans)
		}
	}

	// Attribution endpoint: must parse, and when the instrument is attached
	// (always, under nvload -obs-addr) its counters must be internally
	// consistent — some cause recorded write-backs, and the cumulative
	// write-amp window folds those same counters.
	aj, err := fetchAttrib(client, base)
	if err != nil {
		return err
	}
	if aj == nil {
		return fmt.Errorf("attrib: payload is null (instrument not attached)")
	}
	if len(aj.PerCause) == 0 {
		return fmt.Errorf("attrib: no causes recorded")
	}
	var flushes, elided, fences int64
	for _, c := range aj.PerCause {
		flushes += c.Flushes
		elided += c.FlushesElided
		fences += c.Fences
	}
	if flushes == 0 {
		return fmt.Errorf("attrib: no write-backs attributed")
	}
	if fences == 0 {
		return fmt.Errorf("attrib: no fences attributed (committed epochs must order their writes)")
	}
	cum := aj.WriteAmp.Cumulative
	// Elided flushes are skipped write-backs: reported per cause, but they
	// must stay out of the write-amplification fold.
	if elided > 0 && cum.TotalLines == flushes+elided {
		return fmt.Errorf("attrib: %d elided flushes leaked into write-amp total_lines", elided)
	}
	if cum.TotalLines != flushes {
		return fmt.Errorf("attrib: cumulative total_lines %d != per-cause flushes %d", cum.TotalLines, flushes)
	}
	if cum.CommittedBytes > 0 && cum.WriteAmp <= 0 {
		return fmt.Errorf("attrib: implausible write-amp: %+v", cum)
	}
	if len(aj.Heatmap.BucketLineWrites) == 0 {
		return fmt.Errorf("attrib: heatmap has no buckets")
	}

	// Flight recorder: the always-on ring must have retained the run's epoch
	// transitions and durable publishes.
	fj, err := fetchFlight(client, base)
	if err != nil {
		return err
	}
	if len(fj.Events) == 0 {
		return fmt.Errorf("flight: no events retained")
	}
	kinds := map[string]int{}
	for _, ev := range fj.Events {
		kinds[ev.Type]++
	}
	for _, k := range []string{"epoch-start", "epoch-end", "durable-publish"} {
		if kinds[k] == 0 {
			return fmt.Errorf("flight: no %q events (got %v)", k, kinds)
		}
	}

	// Txn lifecycle: when the engine samples (nvload -txn-sample) the span
	// counts must be consistent with the txn-exec histogram at the advertised
	// rate. Loose 4x bounds: ring eviction, aborted re-runs, and edge batches
	// blur the exact ratio.
	tj, err := fetchTxns(client, base)
	if err != nil {
		return err
	}
	if tj.SampleEvery > 0 {
		if tj.Published == 0 {
			return fmt.Errorf("txns: sampling on (1 in %d) but no spans published", tj.SampleEvery)
		}
		if tj.Published > tj.Sampled {
			return fmt.Errorf("txns: published %d > sampled %d", tj.Published, tj.Sampled)
		}
		if n := p.TxnExec.Count; n > 0 {
			expect := uint64(n) / tj.SampleEvery
			if expect >= 4 && (tj.Sampled > 4*expect+4 || 4*tj.Sampled+4 < expect) {
				return fmt.Errorf("txns: sampled %d spans for %d executed txns at 1-in-%d (expected ~%d)",
					tj.Sampled, n, tj.SampleEvery, expect)
			}
		}
		if tj.Breakdown.Spans == 0 {
			return fmt.Errorf("txns: %d published spans but empty breakdown", tj.Published)
		}
		if tj.Breakdown.Total.P50NS <= 0 {
			return fmt.Errorf("txns: implausible breakdown total: %+v", tj.Breakdown.Total)
		}
	}

	// Prometheus endpoint: the text exposition must golden-parse (every
	// sample line is "name[{labels}] value") and carry the core families.
	body, err := fetchMetrics(client, base)
	if err != nil {
		return err
	}
	for _, want := range []string{
		"# TYPE nvcaracal_epoch_seconds histogram",
		"nvcaracal_epoch_seconds_count",
		"nvcaracal_uptime_seconds",
		"nvcaracal_flight_events_retained",
	} {
		if !strings.Contains(body, want) {
			return fmt.Errorf("metrics: missing %q", want)
		}
	}
	if tj.SampleEvery > 0 && !strings.Contains(body, "nvcaracal_txn_spans_published_total") {
		return fmt.Errorf("metrics: txn sampling on but no nvcaracal_txn_spans_published_total")
	}
	samples := 0
	for i, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return fmt.Errorf("metrics: line %d not 'name value': %q", i+1, line)
		}
		if !strings.HasPrefix(fields[0], "nvcaracal_") {
			return fmt.Errorf("metrics: line %d outside the nvcaracal namespace: %q", i+1, line)
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			return fmt.Errorf("metrics: line %d value: %v", i+1, err)
		}
		samples++
	}
	if samples == 0 {
		return fmt.Errorf("metrics: no samples")
	}

	// Profiling endpoints: a 100ms CPU capture must come back as a valid
	// pprof profile (the repo-local decoder must parse it and find the
	// cpu/nanoseconds column), and bad parameters must be rejected.
	resp, err = client.Get(base + prof.PprofPath + "profile?seconds=0.1")
	if err != nil {
		return err
	}
	body2, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("pprof profile: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body2)))
	}
	pp, err := prof.Parse(body2)
	if err != nil {
		return fmt.Errorf("pprof profile: not a valid pprof encoding: %w", err)
	}
	if _, err := pp.SampleIndex("cpu"); err != nil {
		return fmt.Errorf("pprof profile: %v (types %+v)", err, pp.SampleTypes)
	}
	if pp.DurationNanos <= 0 {
		return fmt.Errorf("pprof profile: missing duration_nanos")
	}
	resp, err = client.Get(base + prof.PprofPath + "profile?epochs=abc")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		return fmt.Errorf("pprof profile?epochs=abc: HTTP %d, want 400", resp.StatusCode)
	}
	return nil
}

// fetchMetrics reads the Prometheus text-exposition endpoint.
func fetchMetrics(client *http.Client, base string) (string, error) {
	resp, err := client.Get(base + obs.MetricsPath)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("metrics endpoint: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		return "", fmt.Errorf("metrics endpoint: content-type %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nvtop:", err)
	os.Exit(1)
}
