module nvcaracal

go 1.22
