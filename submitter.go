package nvcaracal

import "nvcaracal/internal/submit"

// Concurrent group-commit front-end (internal/submit), re-exported so
// applications can serve transactions from many goroutines instead of
// hand-assembling epoch batches.
type (
	// Submitter batches concurrent Submit/SubmitAria calls into epochs and
	// resolves each submission's future once its epoch is durable.
	Submitter = submit.Submitter
	// SubmitterConfig tunes the batch former (size cap, max-latency
	// deadline, queue depth, overload policy).
	SubmitterConfig = submit.Config
	// Future resolves to a SubmitResult when the submission's epoch is
	// durable.
	Future = submit.Future
	// SubmitResult is the final outcome of one submission.
	SubmitResult = submit.Result
	// OverloadPolicy selects blocking backpressure or load shedding when
	// the submission queue is full.
	OverloadPolicy = submit.Overload
)

// Overload policies for SubmitterConfig.
const (
	// OverloadBlock makes Submit wait for queue space (default).
	OverloadBlock = submit.Block
	// OverloadReject makes Submit return ErrOverloaded immediately.
	OverloadReject = submit.Reject
)

// Submitter errors.
var (
	// ErrSubmitterClosed rejects submissions after Close.
	ErrSubmitterClosed = submit.ErrClosed
	// ErrOverloaded rejects submissions when the queue is full under
	// OverloadReject.
	ErrOverloaded = submit.ErrOverloaded
	// ErrEpochFailed resolves futures of the epoch that was executing when
	// the engine failed; those inputs may or may not have reached the log,
	// so recovery may still replay them.
	ErrEpochFailed = submit.ErrEpochFailed
	// ErrNeverSubmitted resolves futures of transactions that never entered
	// an epoch before a failure; they are guaranteed absent from the log.
	ErrNeverSubmitted = submit.ErrNeverSubmitted
)

// NewSubmitter starts a concurrent group-commit front-end over db.
// Goroutines may then call Submit/SubmitAria freely; the caller must not
// call RunEpoch/RunEpochAria directly while the submitter is open, and must
// Close it to flush queued work.
func NewSubmitter(db *DB, cfg SubmitterConfig) *Submitter {
	return submit.New(db, cfg)
}
