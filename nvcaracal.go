// Package nvcaracal is a deterministic, epoch-based, multi-versioned
// database that integrates (simulated) non-volatile main memory with the
// dual-version checkpointing design of "Integrating Non-Volatile Main
// Memory in a Deterministic Database" (EuroSys 2023).
//
// The database batches one-shot transactions into epochs. Each epoch logs
// the transaction inputs to NVMM, performs all concurrency control in an
// initialization phase (pre-creating a sorted version array per written
// row), executes the transactions in parallel while respecting the
// predetermined serial order, and checkpoints by persisting only the FINAL
// write to each row — every intermediate version lives in a DRAM transient
// pool that is discarded at the epoch boundary. After a crash, the engine
// rebuilds its DRAM index from the persistent rows and deterministically
// replays the logged inputs of the interrupted epoch.
//
// Quick start:
//
//	db, err := nvcaracal.Open(nvcaracal.Config{})
//	...
//	txn := &nvcaracal.Txn{
//	    TypeID: myType,
//	    Input:  params,
//	    Ops:    []nvcaracal.Op{{Table: 1, Key: 42, Kind: nvcaracal.OpInsert}},
//	    Exec: func(ctx *nvcaracal.Ctx) {
//	        ctx.Insert(1, 42, []byte("hello"))
//	    },
//	}
//	res, err := db.RunEpoch([]*nvcaracal.Txn{txn})
//
// RunEpoch serves one hand-assembled batch at a time. To serve transactions
// from many goroutines, open a Submitter: it batches concurrent Submit calls
// into epochs (closing each at a size cap or latency deadline) and resolves
// every submission's future once its epoch is durable:
//
//	s := nvcaracal.NewSubmitter(db, nvcaracal.SubmitterConfig{})
//	fut, err := s.Submit(txn) // safe from any goroutine
//	res := fut.Wait()         // epoch, SID, committed/aborted
//	s.Close()                 // flush queued work, stop the pipeline
//
// See the examples directory for runnable programs and internal/core for
// the engine itself.
package nvcaracal

import (
	"fmt"
	"runtime"
	"time"

	"nvcaracal/internal/core"
	"nvcaracal/internal/nvm"
	"nvcaracal/internal/obs"
	"nvcaracal/internal/pmem"
	"nvcaracal/internal/prof"
)

// Re-exported engine types: the facade adds device management and sizing on
// top of internal/core.
type (
	// DB is a database instance.
	DB = core.DB
	// Txn is a one-shot deterministic transaction.
	Txn = core.Txn
	// Ctx is the transaction execution context.
	Ctx = core.Ctx
	// Op is a declared write-set operation.
	Op = core.Op
	// OpKind classifies a write-set operation.
	OpKind = core.OpKind
	// Registry maps logged transaction types to replay decoders.
	Registry = core.Registry
	// Decoder reconstructs a transaction from its logged input.
	Decoder = core.Decoder
	// EpochResult summarizes a completed epoch.
	EpochResult = core.EpochResult
	// RecoveryReport breaks down a recovery run.
	RecoveryReport = core.RecoveryReport
	// StorageMode selects the storage design (NVCaracal or a baseline).
	StorageMode = core.StorageMode
	// MemoryBreakdown reports DRAM/NVMM usage by structure.
	MemoryBreakdown = core.MemoryBreakdown
	// Device is the simulated NVMM device.
	Device = nvm.Device

	// AriaTxn is a deterministic transaction without a declared write set,
	// executed by RunEpochAria with Aria-style snapshot execution and
	// deterministic conflict detection (the paper's §7 integration target).
	AriaTxn = core.AriaTxn
	// AriaCtx is the Aria transaction execution context.
	AriaCtx = core.AriaCtx
	// AriaRegistry maps Aria transaction types to replay decoders.
	AriaRegistry = core.AriaRegistry
	// AriaResult summarizes an Aria epoch.
	AriaResult = core.AriaResult

	// Obs is the observability layer: latency histograms, an epoch-phase
	// tracer, and device-level instruments. Build one with NewObs and pass
	// it via Config.Obs; serve it with ObsHandler.
	Obs = obs.Obs
	// ObsConfig selects which instruments an Obs carries.
	ObsConfig = obs.Config
	// ObsHandler serves /debug/nvcaracal/stats, /debug/nvcaracal/trace,
	// and /debug/nvcaracal/attrib.
	ObsHandler = obs.Handler
	// WatchConfig arms the anomaly watchdog; set it on ObsConfig.Watch and
	// start it with Obs.StartWatch.
	WatchConfig = obs.WatchConfig
	// WatchTargets supplies the engine gauges the watchdog samples
	// (DB.Epoch and DB.DurableEpoch).
	WatchTargets = obs.WatchTargets
	// Watchdog is a running anomaly monitor returned by Obs.StartWatch.
	Watchdog = obs.Watchdog
	// Incident is one watchdog trigger with its evidence snapshot.
	Incident = obs.Incident

	// Profiler is the epoch-correlated profiling layer: phase-labelled
	// runtime/trace regions in the engine plus windowed CPU/trace captures.
	// Build one with NewProfiler, pass it via Config.Prof, serve it with
	// ProfHandler.
	Profiler = prof.Profiler
	// ProfConfig configures a Profiler (epoch gauge, contention-profiler
	// rates).
	ProfConfig = prof.Config
	// ProfHandler serves capture-on-demand profiles at
	// /debug/nvcaracal/pprof/*.
	ProfHandler = prof.Handler
)

// Write-set operation kinds.
const (
	OpUpdate = core.OpUpdate
	OpInsert = core.OpInsert
	OpDelete = core.OpDelete
)

// Storage modes (the paper's design plus its evaluation baselines).
const (
	ModeNVCaracal = core.ModeNVCaracal
	ModeNoLogging = core.ModeNoLogging
	ModeHybrid    = core.ModeHybrid
	ModeAllNVMM   = core.ModeAllNVMM
	ModeAllDRAM   = core.ModeAllDRAM
)

// NewRegistry returns an empty transaction-decoder registry.
func NewRegistry() *Registry { return core.NewRegistry() }

// NewAriaRegistry returns an empty Aria transaction-decoder registry.
func NewAriaRegistry() *AriaRegistry { return core.NewAriaRegistry() }

// CrashMode selects how un-persisted lines behave across a simulated crash.
type CrashMode = nvm.CrashMode

// Crash modes for Device.Crash.
const (
	// CrashStrict drops every line not explicitly flushed and fenced.
	CrashStrict = nvm.CrashStrict
	// CrashRandom lets each non-durable line survive with 50% probability.
	CrashRandom = nvm.CrashRandom
	// CrashAll persists everything (eADR-style).
	CrashAll = nvm.CrashAll
)

// ErrInjectedCrash is the panic value raised when a Device fail-point
// (SetFailAfter) fires, simulating a power failure at an arbitrary persist
// boundary.
var ErrInjectedCrash = nvm.ErrInjectedCrash

// Config sizes and configures a database. The zero value gives a small
// DRAM-speed single-node instance suitable for examples and tests.
type Config struct {
	// Cores is the worker-core count (and per-core pool count). Default:
	// GOMAXPROCS.
	Cores int
	// Mode selects the storage design. Default ModeNVCaracal.
	Mode StorageMode

	// RowsPerCore / ValuesPerCore size the persistent pools. Defaults:
	// 1<<16 each.
	RowsPerCore   int64
	ValuesPerCore int64
	// RowSize is the fixed persistent-row size (multiple of 64; default
	// 256, the paper's default and Optane's internal access granularity).
	RowSize int64
	// ValueSize is the persistent value-slot size (default 1024).
	ValueSize int64
	// ValueSizes adds further value size classes, each with its own
	// per-core pool (§5.5's "one pool for each power of two size"
	// extension). Values are placed in the smallest class that fits.
	ValueSizes []int64
	// LogBytes sizes the input-log region (default 8 MiB).
	LogBytes int64
	// Counters is the number of persistent counter slots (default 64).
	Counters int64
	// ScratchPerCore sizes NVMM scratch for the baseline modes that store
	// transient data in NVMM; sized automatically when those modes are
	// selected.
	ScratchPerCore int64

	// CacheEnabled turns on DRAM cached versions (default true via
	// DefaultConfig; zero-value Config enables it too unless DisableCache).
	DisableCache bool
	// CacheK is the eviction horizon in epochs (default 20).
	CacheK int
	// CacheOnRead also caches rows on read misses (default true).
	DisableCacheOnRead bool
	// CacheHotOnly caches only rows the initialization phase identifies as
	// hot (the paper's §7 selective-caching extension).
	CacheHotOnly bool
	// DisableMinorGC turns the minor collector off (Figure 9 ablation).
	DisableMinorGC bool
	// RevertOnRecovery enables the TPC-C recovery variant.
	RevertOnRecovery bool
	// PersistIndex enables the persistent index journal (the paper's §7
	// extension): index deltas are batched to NVMM every epoch so recovery
	// replays the journal instead of scanning all persistent rows.
	PersistIndex bool
	// IndexJournalBytes sizes the journal region; auto-sized from the row
	// pools when zero and PersistIndex is set.
	IndexJournalBytes int64
	// AsyncPersist overlaps the tail of the persist phase — the checkpoint
	// fence, the epoch record, and the durable-epoch publish — with the
	// caller's between-epoch work. RunEpoch drains the previous epoch's
	// tail before starting, and DB.WaitDurable drains it explicitly
	// (DB.DurableEpoch reports the last epoch whose record landed).
	//
	// The overlap only pays off when epochs leave enough work to hide the
	// tail under: below ~4 worker cores both AsyncPersist and Pipeline can
	// run SLOWER than synchronous commits, because the tail is short at
	// that scale while the background committer's device accesses contend
	// with the next epoch's workers (see the annotated 1-2 worker cells of
	// BENCH_pipeline.json and EXPERIMENTS.md's async-at-1-worker anomaly
	// note). Benchmark both settings at your worker count before enabling.
	AsyncPersist bool
	// Pipeline deepens AsyncPersist into a depth-1 epoch pipeline: a
	// background committer owns the whole checkpoint (parallel per-core
	// pool staging, counters, index journal, checkpoint fence, epoch
	// record) while the caller runs the next epoch's log/init/execute.
	// Implies AsyncPersist; DurableEpoch lags the current epoch by at most
	// one until WaitDurable.
	Pipeline bool

	// Registry supplies replay decoders; required for crash recovery.
	Registry *Registry
	// AriaRegistry supplies Aria replay decoders, required to recover a
	// crash during a RunEpochAria epoch.
	AriaRegistry *AriaRegistry

	// NVMMReadLatency / NVMMWriteLatency charge a busy-wait per cache line
	// accessed on the simulated device, reproducing the DRAM/NVMM gap.
	// Zero (default) runs at DRAM speed.
	NVMMReadLatency  time.Duration
	NVMMWriteLatency time.Duration
	// NVMMFenceLatency charges a drain per Fence — the persistence wait a
	// per-transaction-commit engine pays per transaction and an epoch-based
	// engine amortizes over the whole batch.
	NVMMFenceLatency time.Duration

	// Obs, when non-nil, attaches the observability layer: epoch/phase/txn
	// latency histograms and trace spans from the engine, and (when the Obs
	// was built with Device instrumentation) per-call device latency. Nil
	// costs a nil check per instrumentation site.
	Obs *Obs
	// Prof, when non-nil, attaches the profiling hooks: runtime/trace
	// regions plus pprof "phase" goroutine labels around every epoch phase,
	// and the engine's epoch gauge for windowed captures. Nil costs one
	// pointer check per phase.
	Prof *Profiler
}

func (c Config) layout(cores int) (pmem.Layout, error) {
	l := pmem.Layout{
		Cores:          cores,
		RowSize:        c.RowSize,
		RowsPerCore:    c.RowsPerCore,
		ValueSize:      c.ValueSize,
		ValueSizes:     c.ValueSizes,
		ValuesPerCore:  c.ValuesPerCore,
		LogBytes:       c.LogBytes,
		Counters:       c.Counters,
		ScratchPerCore: c.ScratchPerCore,
	}
	if l.RowSize == 0 {
		l.RowSize = 256
	}
	if l.RowsPerCore == 0 {
		l.RowsPerCore = 1 << 16
	}
	if l.ValueSize == 0 {
		l.ValueSize = 1024
	}
	if l.ValuesPerCore == 0 {
		l.ValuesPerCore = 1 << 16
	}
	if l.LogBytes == 0 {
		l.LogBytes = 8 << 20
	}
	if l.Counters == 0 {
		l.Counters = 64
	}
	if l.ScratchPerCore == 0 && (c.Mode == ModeHybrid || c.Mode == ModeAllNVMM) {
		l.ScratchPerCore = 64 << 20
	}
	if c.PersistIndex {
		l.IndexLogBytes = c.IndexJournalBytes
		if l.IndexLogBytes == 0 {
			// Room for a full snapshot (~21 B/row) plus generous delta churn.
			l.IndexLogBytes = l.RowsPerCore*int64(cores)*21*3 + (1 << 20)
		}
	}
	l.RingCap = 2*(l.RowsPerCore+l.ValuesPerCore) + 1024
	if err := l.Finalize(); err != nil {
		return pmem.Layout{}, err
	}
	return l, nil
}

func (c Config) coreOptions() (core.Options, error) {
	opts := core.Options{
		Cores:            c.Cores,
		Mode:             c.Mode,
		CacheEnabled:     !c.DisableCache,
		CacheK:           c.CacheK,
		CacheOnRead:      !c.DisableCacheOnRead,
		CacheHotOnly:     c.CacheHotOnly,
		MinorGCEnabled:   !c.DisableMinorGC,
		RevertOnRecovery: c.RevertOnRecovery,
		PersistIndex:     c.PersistIndex,
		AsyncPersist:     c.AsyncPersist,
		Pipeline:         c.Pipeline,
		Registry:         c.Registry,
		AriaRegistry:     c.AriaRegistry,
		Obs:              c.Obs,
		Prof:             c.Prof,
	}
	if opts.Registry == nil && c.Mode == ModeNVCaracal {
		// Logging mode needs a registry for replay; give callers that never
		// crash a benign empty one.
		opts.Registry = core.NewRegistry()
	}
	if opts.Cores <= 0 {
		opts.Cores = runtime.GOMAXPROCS(0)
	}
	l, err := c.layout(opts.Cores)
	if err != nil {
		return core.Options{}, err
	}
	opts.Layout = l
	return opts, nil
}

func (c Config) deviceOptions() []nvm.Option {
	var opts []nvm.Option
	if c.NVMMReadLatency > 0 || c.NVMMWriteLatency > 0 {
		opts = append(opts, nvm.WithLatency(c.NVMMReadLatency, c.NVMMWriteLatency))
	}
	if c.NVMMFenceLatency > 0 {
		opts = append(opts, nvm.WithFenceLatency(c.NVMMFenceLatency))
	}
	if d := c.Obs.Device(); d != nil {
		opts = append(opts, nvm.WithObserver(d))
	}
	if a := c.Obs.Attrib(); a != nil {
		opts = append(opts, nvm.WithAttrib(a))
	}
	return opts
}

// NewObs builds an observability layer per the config. Pass the result via
// Config.Obs (Open wires the device instruments too) and expose it with
// NewObsHandler.
func NewObs(cfg ObsConfig) *Obs { return obs.New(cfg) }

// NewObsHandler returns an http.Handler serving o's introspection
// endpoints: /debug/nvcaracal/stats and /debug/nvcaracal/trace?epochs=N.
func NewObsHandler(o *Obs) *ObsHandler { return obs.NewHandler(o) }

// NewProfiler builds the profiling layer. Pass it via Config.Prof (Open
// wires the engine's epoch gauge) and serve captures with NewProfHandler.
func NewProfiler(cfg ProfConfig) *Profiler { return prof.New(cfg) }

// NewProfHandler returns an http.Handler serving p's capture-on-demand
// profiles; mount it at prof.PprofPath (/debug/nvcaracal/pprof/).
func NewProfHandler(p *Profiler) *ProfHandler { return prof.NewHandler(p) }

// Open creates a fresh database on a new simulated NVMM device sized for
// the configuration.
func Open(cfg Config) (*DB, error) {
	db, _, err := OpenWithDevice(cfg)
	return db, err
}

// OpenWithDevice is Open but also returns the underlying device, which
// tests and benchmarks use for access statistics and crash simulation.
func OpenWithDevice(cfg Config) (*DB, *Device, error) {
	opts, err := cfg.coreOptions()
	if err != nil {
		return nil, nil, err
	}
	dev := nvm.New(opts.Layout.TotalBytes(), cfg.deviceOptions()...)
	db, err := core.Open(dev, opts)
	if err != nil {
		return nil, nil, err
	}
	return db, dev, nil
}

// Recover attaches to a crashed device, repairs and replays per the paper's
// recovery protocol, and returns the recovered database. The configuration
// must match the one the device was formatted with.
func Recover(dev *Device, cfg Config) (*DB, *RecoveryReport, error) {
	opts, err := cfg.coreOptions()
	if err != nil {
		return nil, nil, err
	}
	if cfg.Registry == nil && cfg.Mode == ModeNVCaracal {
		return nil, nil, fmt.Errorf("nvcaracal: recovery requires a Registry with the workload's decoders")
	}
	return core.Recover(dev, opts)
}

// PaperNVMMReadLatency and PaperNVMMWriteLatency reproduce the paper
// machine's measured DRAM:NVMM throughput gap (3.2x for random reads,
// 11.9x for random writes) at simulation scale. Pass them to Config to run
// benchmarks "on NVMM"; leave zero for DRAM speed.
const (
	PaperNVMMReadLatency  = 300 * time.Nanosecond
	PaperNVMMWriteLatency = 1200 * time.Nanosecond
)
